//! Panel-packed weight matrices and the fused-epilogue GEMM that consumes
//! them.
//!
//! The inference hot loop multiplies small activation matrices (`m` = 1..16
//! rows) against the *same* weight matrices thousands of times per query. Two
//! costs are pure overhead there:
//!
//! * **Layout**: the row-major weight walks column `j` with a stride of `n`
//!   floats per k-step. Packing the matrix once at load into panel-major
//!   order — `NR`-column panels, each panel's k-rows contiguous — turns every
//!   k-step of the kernel into one 128-byte sequential load.
//! * **Extra passes**: `y = act(x·W + b)` as three ops (GEMM, bias
//!   broadcast, activation) touches the output three times. The packed GEMM
//!   applies bias and activation to the accumulator registers before the
//!   single store, and can optionally *accumulate* onto the existing output
//!   (which is what fuses the LSTM's `x·W_ih + h·W_hh + b` into two GEMM
//!   calls with no separate add/bias passes).
//!
//! Panels are `NR` = 32 columns wide for **every** ISA tier: AVX-512 eats a
//! panel as two zmm registers, AVX2 as two 16-column halves of two ymm each,
//! scalar loops over it. Tail panels are zero-padded, so the k-loop never
//! branches on column index — only the epilogue's store is masked.
//!
//! **FP-order contract** (same as `tensor::matmul_kernel`): every output
//! element is one k-increasing fma chain; which instructions touch a column
//! depend only on the column index and `n`, never on the row count, so row
//! `i` of a batched product is bitwise identical to the 1-row product of row
//! `i`. Zero coefficients may be skipped — `fma(0, w, acc) == acc` exactly,
//! and accumulators can never become `-0.0` (they start at `+0.0`, and
//! `+0.0 + -0.0 == +0.0` under round-to-nearest).

use crate::isa::Isa;
use crate::layers::Activation;
use crate::tensor::Tensor;

/// Panel width in columns, shared by all ISA tiers.
pub const NR: usize = 32;

/// A weight matrix repacked for [`gemm_packed`]: `ceil(n/NR)` panels, each
/// holding its `NR` columns k-major (`panels[p*k*NR + kk*NR + c]` is element
/// `(kk, p*NR + c)` of the source), tail columns zero-padded.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedGemm {
    k: usize,
    n: usize,
    panels: Vec<f32>,
}

impl PackedGemm {
    /// Pack a `[k x n]` row-major weight matrix.
    pub fn pack(w: &Tensor) -> PackedGemm {
        let (k, n) = w.shape();
        let np = n.div_ceil(NR);
        let mut panels = vec![0.0f32; np * k * NR];
        let src = w.data();
        for p in 0..np {
            let cols = NR.min(n - p * NR);
            let dst = &mut panels[p * k * NR..(p + 1) * k * NR];
            for kk in 0..k {
                dst[kk * NR..kk * NR + cols]
                    .copy_from_slice(&src[kk * n + p * NR..kk * n + p * NR + cols]);
            }
        }
        PackedGemm { k, n, panels }
    }

    /// Input width (rows of the packed matrix).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output width (columns of the packed matrix).
    pub fn n(&self) -> usize {
        self.n
    }
}

/// `out[m x n] = act((accumulate ? out : 0) + a[m x k] · W + bias)`, with the
/// epilogue fused into the accumulator registers. Dispatches once per process
/// via [`crate::isa::active`].
pub fn gemm_packed(
    m: usize,
    a: &[f32],
    w: &PackedGemm,
    accumulate: bool,
    bias: Option<&[f32]>,
    act: Activation,
    out: &mut [f32],
) {
    gemm_packed_force(crate::isa::active(), m, a, w, accumulate, bias, act, out)
}

/// [`gemm_packed`] on an explicitly chosen ISA tier (falls back to scalar if
/// the CPU lacks it). Test/bench entry point; production code uses the
/// process-wide dispatch.
#[allow(clippy::too_many_arguments)] // GEMM signature: dims + operands + epilogue knobs.
pub fn gemm_packed_force(
    isa: Isa,
    m: usize,
    a: &[f32],
    w: &PackedGemm,
    accumulate: bool,
    bias: Option<&[f32]>,
    act: Activation,
    out: &mut [f32],
) {
    debug_assert!(a.len() >= m * w.k, "input too small");
    debug_assert!(out.len() >= m * w.n, "output too small");
    if let Some(b) = bias {
        debug_assert!(b.len() >= w.n, "bias too small");
    }
    match isa {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 if isa.cpu_supports() => unsafe {
            gemm_packed_avx512(m, a, w, accumulate, bias, act, out)
        },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 if isa.cpu_supports() => unsafe {
            gemm_packed_avx2(m, a, w, accumulate, bias, act, out)
        },
        _ => gemm_packed_scalar(m, a, w, accumulate, bias, act, out),
    }
}

/// Scalar epilogue: the libm expressions `infer::activate_inplace` uses on
/// the portable tier.
#[inline]
fn act_scalar(act: Activation, v: f32) -> f32 {
    match act {
        Activation::Identity => v,
        Activation::Relu => v.max(0.0),
        Activation::Tanh => v.tanh(),
        Activation::Sigmoid => crate::act::sigmoid_scalar(v),
    }
}

fn gemm_packed_scalar(
    m: usize,
    a: &[f32],
    w: &PackedGemm,
    accumulate: bool,
    bias: Option<&[f32]>,
    act: Activation,
    out: &mut [f32],
) {
    let (k, n) = (w.k, w.n);
    let np = n.div_ceil(NR);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let o_row = &mut out[i * n..(i + 1) * n];
        for p in 0..np {
            let cols = NR.min(n - p * NR);
            let panel = &w.panels[p * k * NR..(p + 1) * k * NR];
            let mut acc = [0.0f32; NR];
            for (kk, &c) in a_row.iter().enumerate() {
                if c == 0.0 {
                    continue;
                }
                let prow = &panel[kk * NR..(kk + 1) * NR];
                // Plain mul+add (not `mul_add`): without FMA in the target
                // baseline, `f32::mul_add` lowers to a libm call per lane,
                // while this form autovectorizes to SSE2 on every x86-64.
                for (av, &pv) in acc.iter_mut().zip(prow) {
                    *av += c * pv;
                }
            }
            for (j, &av) in acc.iter().enumerate().take(cols) {
                let col = p * NR + j;
                let mut v = av;
                if accumulate {
                    v += o_row[col];
                }
                if let Some(b) = bias {
                    v += b[col];
                }
                o_row[col] = act_scalar(act, v);
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{Activation, PackedGemm, NR};
    use std::arch::x86_64::*;

    /// Activation on a ymm pair, using the same Cephes polynomials as the
    /// AVX2 `activate_inplace` path.
    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn act_ymm(act: Activation, v: __m256) -> __m256 {
        match act {
            Activation::Identity => v,
            Activation::Relu => _mm256_max_ps(v, _mm256_setzero_ps()),
            Activation::Tanh => crate::act::avx::tanh_ps(v),
            Activation::Sigmoid => crate::act::avx::sigmoid_ps(v),
        }
    }

    /// Fused epilogue for one row's 16-column half: optional accumulate onto
    /// the existing output, optional bias, activation, store. `live` is how
    /// many of the 16 lanes map to real columns; partial halves detour
    /// through stack buffers so every live lane still takes the SIMD
    /// polynomial path (lane path depends only on the column, per the
    /// FP-order contract).
    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn epilogue_avx2(
        mut v0: __m256,
        mut v1: __m256,
        o: *mut f32,
        bias: Option<*const f32>,
        accumulate: bool,
        act: Activation,
        live: usize,
    ) {
        if live == 16 {
            if accumulate {
                v0 = _mm256_add_ps(v0, _mm256_loadu_ps(o));
                v1 = _mm256_add_ps(v1, _mm256_loadu_ps(o.add(8)));
            }
            if let Some(b) = bias {
                v0 = _mm256_add_ps(v0, _mm256_loadu_ps(b));
                v1 = _mm256_add_ps(v1, _mm256_loadu_ps(b.add(8)));
            }
            _mm256_storeu_ps(o, act_ymm(act, v0));
            _mm256_storeu_ps(o.add(8), act_ymm(act, v1));
        } else {
            if accumulate {
                let mut prev = [0.0f32; 16];
                std::ptr::copy_nonoverlapping(o, prev.as_mut_ptr(), live);
                v0 = _mm256_add_ps(v0, _mm256_loadu_ps(prev.as_ptr()));
                v1 = _mm256_add_ps(v1, _mm256_loadu_ps(prev.as_ptr().add(8)));
            }
            if let Some(b) = bias {
                let mut bb = [0.0f32; 16];
                std::ptr::copy_nonoverlapping(b, bb.as_mut_ptr(), live);
                v0 = _mm256_add_ps(v0, _mm256_loadu_ps(bb.as_ptr()));
                v1 = _mm256_add_ps(v1, _mm256_loadu_ps(bb.as_ptr().add(8)));
            }
            let mut buf = [0.0f32; 16];
            _mm256_storeu_ps(buf.as_mut_ptr(), act_ymm(act, v0));
            _mm256_storeu_ps(buf.as_mut_ptr().add(8), act_ymm(act, v1));
            std::ptr::copy_nonoverlapping(buf.as_ptr(), o, live);
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn gemm_packed_avx2(
        m: usize,
        a: &[f32],
        w: &PackedGemm,
        accumulate: bool,
        bias: Option<&[f32]>,
        act: Activation,
        out: &mut [f32],
    ) {
        let (k, n) = (w.k, w.n);
        let np = n.div_ceil(NR);
        let panels = w.panels.as_ptr();
        let mut i = 0;
        while i + 4 <= m {
            let (a0, rest) = a[i * k..].split_at(k);
            let (a1, rest) = rest.split_at(k);
            let (a2, rest) = rest.split_at(k);
            let a3 = &rest[..k];
            // Same bitwise-free sparse-step heuristic as the unpacked tile.
            let mut skippable = 0usize;
            for kk in 0..k {
                if a0[kk] == 0.0 && a1[kk] == 0.0 && a2[kk] == 0.0 && a3[kk] == 0.0 {
                    skippable += 1;
                }
            }
            let sparse = skippable * 4 >= k;
            for p in 0..np {
                let cols = NR.min(n - p * NR);
                let panel = panels.add(p * k * NR);
                for h in 0..2 {
                    let live = cols.saturating_sub(h * 16).min(16);
                    if live == 0 {
                        continue;
                    }
                    let pbase = panel.add(h * 16);
                    let mut acc00 = _mm256_setzero_ps();
                    let mut acc01 = _mm256_setzero_ps();
                    let mut acc10 = _mm256_setzero_ps();
                    let mut acc11 = _mm256_setzero_ps();
                    let mut acc20 = _mm256_setzero_ps();
                    let mut acc21 = _mm256_setzero_ps();
                    let mut acc30 = _mm256_setzero_ps();
                    let mut acc31 = _mm256_setzero_ps();
                    for kk in 0..k {
                        let c0 = *a0.get_unchecked(kk);
                        let c1 = *a1.get_unchecked(kk);
                        let c2 = *a2.get_unchecked(kk);
                        let c3 = *a3.get_unchecked(kk);
                        if sparse && c0 == 0.0 && c1 == 0.0 && c2 == 0.0 && c3 == 0.0 {
                            continue;
                        }
                        let b0 = _mm256_loadu_ps(pbase.add(kk * NR));
                        let b1 = _mm256_loadu_ps(pbase.add(kk * NR + 8));
                        let v0 = _mm256_set1_ps(c0);
                        acc00 = _mm256_fmadd_ps(v0, b0, acc00);
                        acc01 = _mm256_fmadd_ps(v0, b1, acc01);
                        let v1 = _mm256_set1_ps(c1);
                        acc10 = _mm256_fmadd_ps(v1, b0, acc10);
                        acc11 = _mm256_fmadd_ps(v1, b1, acc11);
                        let v2 = _mm256_set1_ps(c2);
                        acc20 = _mm256_fmadd_ps(v2, b0, acc20);
                        acc21 = _mm256_fmadd_ps(v2, b1, acc21);
                        let v3 = _mm256_set1_ps(c3);
                        acc30 = _mm256_fmadd_ps(v3, b0, acc30);
                        acc31 = _mm256_fmadd_ps(v3, b1, acc31);
                    }
                    let col0 = p * NR + h * 16;
                    let bptr = bias.map(|b| b.as_ptr().add(col0));
                    let o = out.as_mut_ptr();
                    epilogue_avx2(acc00, acc01, o.add(i * n + col0), bptr, accumulate, act, live);
                    epilogue_avx2(
                        acc10,
                        acc11,
                        o.add((i + 1) * n + col0),
                        bptr,
                        accumulate,
                        act,
                        live,
                    );
                    epilogue_avx2(
                        acc20,
                        acc21,
                        o.add((i + 2) * n + col0),
                        bptr,
                        accumulate,
                        act,
                        live,
                    );
                    epilogue_avx2(
                        acc30,
                        acc31,
                        o.add((i + 3) * n + col0),
                        bptr,
                        accumulate,
                        act,
                        live,
                    );
                }
            }
            i += 4;
        }
        for i in i..m {
            let a_row = &a[i * k..(i + 1) * k];
            for p in 0..np {
                let cols = NR.min(n - p * NR);
                let panel = panels.add(p * k * NR);
                for h in 0..2 {
                    let live = cols.saturating_sub(h * 16).min(16);
                    if live == 0 {
                        continue;
                    }
                    let pbase = panel.add(h * 16);
                    let mut acc0 = _mm256_setzero_ps();
                    let mut acc1 = _mm256_setzero_ps();
                    for kk in 0..k {
                        let c = *a_row.get_unchecked(kk);
                        if c == 0.0 {
                            continue;
                        }
                        let v = _mm256_set1_ps(c);
                        acc0 = _mm256_fmadd_ps(v, _mm256_loadu_ps(pbase.add(kk * NR)), acc0);
                        acc1 = _mm256_fmadd_ps(v, _mm256_loadu_ps(pbase.add(kk * NR + 8)), acc1);
                    }
                    let col0 = p * NR + h * 16;
                    let bptr = bias.map(|b| b.as_ptr().add(col0));
                    let o = out.as_mut_ptr().add(i * n + col0);
                    epilogue_avx2(acc0, acc1, o, bptr, accumulate, act, live);
                }
            }
        }
    }

    /// Activation on a zmm register (AVX-512 Cephes polynomials).
    #[inline]
    #[target_feature(enable = "avx512f")]
    unsafe fn act_zmm(act: Activation, v: __m512) -> __m512 {
        match act {
            Activation::Identity => v,
            Activation::Relu => _mm512_max_ps(v, _mm512_setzero_ps()),
            Activation::Tanh => crate::act::avx512::tanh_ps(v),
            Activation::Sigmoid => crate::act::avx512::sigmoid_ps(v),
        }
    }

    /// Fused epilogue for one row's full 32-column panel; `cols` live
    /// columns, masked loads/stores cover the tail (dead lanes contribute
    /// `+0.0` and are never stored).
    #[inline]
    #[target_feature(enable = "avx512f")]
    unsafe fn epilogue_avx512(
        mut v0: __m512,
        mut v1: __m512,
        o: *mut f32,
        bias: Option<*const f32>,
        accumulate: bool,
        act: Activation,
        cols: usize,
    ) {
        let m0: __mmask16 = if cols >= 16 { 0xffff } else { (1u16 << cols) - 1 };
        let m1: __mmask16 = if cols >= 32 {
            0xffff
        } else if cols > 16 {
            (1u16 << (cols - 16)) - 1
        } else {
            0
        };
        if accumulate {
            v0 = _mm512_add_ps(v0, _mm512_maskz_loadu_ps(m0, o));
            v1 = _mm512_add_ps(v1, _mm512_maskz_loadu_ps(m1, o.add(16)));
        }
        if let Some(b) = bias {
            v0 = _mm512_add_ps(v0, _mm512_maskz_loadu_ps(m0, b));
            v1 = _mm512_add_ps(v1, _mm512_maskz_loadu_ps(m1, b.add(16)));
        }
        _mm512_mask_storeu_ps(o, m0, act_zmm(act, v0));
        if m1 != 0 {
            _mm512_mask_storeu_ps(o.add(16), m1, act_zmm(act, v1));
        }
    }

    #[target_feature(enable = "avx512f")]
    pub unsafe fn gemm_packed_avx512(
        m: usize,
        a: &[f32],
        w: &PackedGemm,
        accumulate: bool,
        bias: Option<&[f32]>,
        act: Activation,
        out: &mut [f32],
    ) {
        let (k, n) = (w.k, w.n);
        let np = n.div_ceil(NR);
        let panels = w.panels.as_ptr();
        let mut i = 0;
        while i + 4 <= m {
            let (a0, rest) = a[i * k..].split_at(k);
            let (a1, rest) = rest.split_at(k);
            let (a2, rest) = rest.split_at(k);
            let a3 = &rest[..k];
            let mut skippable = 0usize;
            for kk in 0..k {
                if a0[kk] == 0.0 && a1[kk] == 0.0 && a2[kk] == 0.0 && a3[kk] == 0.0 {
                    skippable += 1;
                }
            }
            let sparse = skippable * 4 >= k;
            for p in 0..np {
                let cols = NR.min(n - p * NR);
                let panel = panels.add(p * k * NR);
                // The k-loop always runs full width — tail panels are
                // zero-padded, so only the epilogue needs masks.
                let mut acc00 = _mm512_setzero_ps();
                let mut acc01 = _mm512_setzero_ps();
                let mut acc10 = _mm512_setzero_ps();
                let mut acc11 = _mm512_setzero_ps();
                let mut acc20 = _mm512_setzero_ps();
                let mut acc21 = _mm512_setzero_ps();
                let mut acc30 = _mm512_setzero_ps();
                let mut acc31 = _mm512_setzero_ps();
                for kk in 0..k {
                    let c0 = *a0.get_unchecked(kk);
                    let c1 = *a1.get_unchecked(kk);
                    let c2 = *a2.get_unchecked(kk);
                    let c3 = *a3.get_unchecked(kk);
                    if sparse && c0 == 0.0 && c1 == 0.0 && c2 == 0.0 && c3 == 0.0 {
                        continue;
                    }
                    let b0 = _mm512_loadu_ps(panel.add(kk * NR));
                    let b1 = _mm512_loadu_ps(panel.add(kk * NR + 16));
                    let v0 = _mm512_set1_ps(c0);
                    acc00 = _mm512_fmadd_ps(v0, b0, acc00);
                    acc01 = _mm512_fmadd_ps(v0, b1, acc01);
                    let v1 = _mm512_set1_ps(c1);
                    acc10 = _mm512_fmadd_ps(v1, b0, acc10);
                    acc11 = _mm512_fmadd_ps(v1, b1, acc11);
                    let v2 = _mm512_set1_ps(c2);
                    acc20 = _mm512_fmadd_ps(v2, b0, acc20);
                    acc21 = _mm512_fmadd_ps(v2, b1, acc21);
                    let v3 = _mm512_set1_ps(c3);
                    acc30 = _mm512_fmadd_ps(v3, b0, acc30);
                    acc31 = _mm512_fmadd_ps(v3, b1, acc31);
                }
                let col0 = p * NR;
                let bptr = bias.map(|b| b.as_ptr().add(col0));
                let o = out.as_mut_ptr();
                epilogue_avx512(acc00, acc01, o.add(i * n + col0), bptr, accumulate, act, cols);
                epilogue_avx512(
                    acc10,
                    acc11,
                    o.add((i + 1) * n + col0),
                    bptr,
                    accumulate,
                    act,
                    cols,
                );
                epilogue_avx512(
                    acc20,
                    acc21,
                    o.add((i + 2) * n + col0),
                    bptr,
                    accumulate,
                    act,
                    cols,
                );
                epilogue_avx512(
                    acc30,
                    acc31,
                    o.add((i + 3) * n + col0),
                    bptr,
                    accumulate,
                    act,
                    cols,
                );
            }
            i += 4;
        }
        for i in i..m {
            let a_row = &a[i * k..(i + 1) * k];
            for p in 0..np {
                let cols = NR.min(n - p * NR);
                let panel = panels.add(p * k * NR);
                let mut acc0 = _mm512_setzero_ps();
                let mut acc1 = _mm512_setzero_ps();
                for kk in 0..k {
                    let c = *a_row.get_unchecked(kk);
                    if c == 0.0 {
                        continue;
                    }
                    let v = _mm512_set1_ps(c);
                    acc0 = _mm512_fmadd_ps(v, _mm512_loadu_ps(panel.add(kk * NR)), acc0);
                    acc1 = _mm512_fmadd_ps(v, _mm512_loadu_ps(panel.add(kk * NR + 16)), acc1);
                }
                let col0 = p * NR;
                let bptr = bias.map(|b| b.as_ptr().add(col0));
                let o = out.as_mut_ptr().add(i * n + col0);
                epilogue_avx512(acc0, acc1, o, bptr, accumulate, act, cols);
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
use x86::{gemm_packed_avx2, gemm_packed_avx512};

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::too_many_arguments)]
    fn reference(
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        w: &[f32],
        accumulate: bool,
        bias: Option<&[f32]>,
        act: Activation,
        out: &mut [f32],
    ) {
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc = a[i * k + kk].mul_add(w[kk * n + j], acc);
                }
                let mut v = acc;
                if accumulate {
                    v += out[i * n + j];
                }
                if let Some(b) = bias {
                    v += b[j];
                }
                out[i * n + j] = act_scalar(act, v);
            }
        }
    }

    fn matrix(rows: usize, cols: usize, seed: u64) -> Vec<f32> {
        (0..rows * cols)
            .map(|i| {
                let x =
                    ((i as u64).wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(seed) >> 40) as f32;
                // Plant exact zeros so the sparse-skip path is exercised.
                if i % 7 == 0 {
                    0.0
                } else {
                    x / 16_777_216.0 - 0.5
                }
            })
            .collect()
    }

    #[test]
    fn packed_gemm_matches_reference_on_all_tiers_and_edges() {
        for &(m, k, n) in
            &[(1usize, 1usize, 1usize), (3, 5, 7), (4, 8, 32), (5, 9, 33), (7, 17, 48), (8, 12, 20)]
        {
            let a = matrix(m, k, 1);
            let wmat = matrix(k, n, 2);
            let w = PackedGemm::pack(&Tensor::from_vec(k, n, wmat.clone()));
            let bias = matrix(1, n, 3);
            for isa in Isa::supported() {
                for act in
                    [Activation::Identity, Activation::Relu, Activation::Tanh, Activation::Sigmoid]
                {
                    for (accumulate, use_bias) in [(false, false), (false, true), (true, true)] {
                        let seed_out = matrix(m, n, 4);
                        let mut got = seed_out.clone();
                        let mut want = seed_out.clone();
                        let b = use_bias.then_some(&bias[..]);
                        gemm_packed_force(isa, m, &a, &w, accumulate, b, act, &mut got);
                        reference(m, k, n, &a, &wmat, accumulate, b, act, &mut want);
                        for (idx, (g, r)) in got.iter().zip(&want).enumerate() {
                            assert!(
                                (g - r).abs() <= 2e-5 + 1e-5 * r.abs(),
                                "{isa:?} {act:?} acc={accumulate} bias={use_bias} \
                                 m={m} k={k} n={n} out[{idx}]: {g} vs {r}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn packed_gemm_rows_bitwise_equal_single_row_calls() {
        let (m, k, n) = (7usize, 13usize, 21usize);
        let a = matrix(m, k, 11);
        let w = PackedGemm::pack(&Tensor::from_vec(k, n, matrix(k, n, 12)));
        let bias = matrix(1, n, 13);
        for isa in Isa::supported() {
            let mut batched = vec![0.0f32; m * n];
            gemm_packed_force(isa, m, &a, &w, false, Some(&bias), Activation::Tanh, &mut batched);
            for r in 0..m {
                let mut single = vec![0.0f32; n];
                gemm_packed_force(
                    isa,
                    1,
                    &a[r * k..(r + 1) * k],
                    &w,
                    false,
                    Some(&bias),
                    Activation::Tanh,
                    &mut single,
                );
                assert_eq!(
                    &batched[r * n..(r + 1) * n],
                    &single[..],
                    "{isa:?}: row {r} of the batched product is not bitwise stable"
                );
            }
        }
    }

    #[test]
    fn accumulate_fuses_two_gemms_and_a_bias() {
        // The LSTM-gate shape: gates = x·W_ih, then gates += h·W_hh + b.
        let (m, k1, k2, n) = (3usize, 6usize, 5usize, 40usize);
        let x = matrix(m, k1, 21);
        let h = matrix(m, k2, 22);
        let w_ih_mat = matrix(k1, n, 23);
        let w_hh_mat = matrix(k2, n, 24);
        let bias = matrix(1, n, 25);
        let w_ih = PackedGemm::pack(&Tensor::from_vec(k1, n, w_ih_mat.clone()));
        let w_hh = PackedGemm::pack(&Tensor::from_vec(k2, n, w_hh_mat.clone()));
        for isa in Isa::supported() {
            let mut gates = vec![0.0f32; m * n];
            gemm_packed_force(isa, m, &x, &w_ih, false, None, Activation::Identity, &mut gates);
            gemm_packed_force(
                isa,
                m,
                &h,
                &w_hh,
                true,
                Some(&bias),
                Activation::Identity,
                &mut gates,
            );
            let mut want = vec![0.0f32; m * n];
            reference(m, k1, n, &x, &w_ih_mat, false, None, Activation::Identity, &mut want);
            reference(m, k2, n, &h, &w_hh_mat, true, Some(&bias), Activation::Identity, &mut want);
            for (idx, (g, r)) in gates.iter().zip(&want).enumerate() {
                assert!((g - r).abs() <= 2e-5, "{isa:?} gates[{idx}]: {g} vs {r}");
            }
        }
    }
}
