//! Reverse-mode automatic differentiation on a per-batch tape.
//!
//! A [`Graph`] is rebuilt for every forward pass. QPSeeker encodes *trees* of
//! variable shape (one LSTM cell per plan node), so a static computation
//! graph is impossible; instead each batch records the exact ops it ran and
//! [`Graph::backward`] replays them in reverse. Parameters live in a
//! [`ParamStore`](crate::params::ParamStore) and are referenced by id, which
//! keeps gradients flowing into persistent storage across batches.
//!
//! Every op's gradient rule is verified against central finite differences in
//! the unit tests below and in the crate's proptest suite.

use crate::params::{GradAccumulator, ParamId, ParamStore};
use crate::tensor::Tensor;

/// Handle to a node in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

impl Var {
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Debug, Clone)]
enum Op {
    /// Leaf holding a constant input (no gradient).
    Constant,
    /// Leaf mirroring a parameter; gradient is written back to the store.
    Param(ParamId),
    MatMul(Var, Var),
    Add(Var, Var),
    /// `[r,c] + [1,c]` row-broadcast (bias add).
    AddRowBroadcast(Var, Var),
    /// `[r,c] ⊙ [r,1]` column-broadcast (per-row scaling, e.g. set masks).
    MulColBroadcast(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    Scale(Var, f32),
    AddScalar(Var, f32),
    Relu(Var),
    Tanh(Var),
    Sigmoid(Var),
    Exp(Var),
    SoftmaxRows(Var),
    ConcatCols(Var, Var),
    StackRows(Vec<Var>),
    SumRows(Var),
    SumAll(Var),
    SliceCols(Var, usize, usize),
    Transpose(Var),
}

struct Node {
    op: Op,
    value: Tensor,
}

/// A tape of tensor operations supporting reverse-mode differentiation.
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
}

impl Graph {
    pub fn new() -> Self {
        Self { nodes: Vec::with_capacity(256) }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, op: Op, value: Tensor) -> Var {
        debug_assert!(value.all_finite(), "non-finite value produced by {op:?}");
        self.nodes.push(Node { op, value });
        Var(self.nodes.len() - 1)
    }

    /// The forward value of `v`.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    // ---- leaves -----------------------------------------------------------

    /// Record a constant (non-differentiable) input.
    pub fn constant(&mut self, t: Tensor) -> Var {
        self.push(Op::Constant, t)
    }

    /// Record a scalar constant.
    pub fn scalar(&mut self, v: f32) -> Var {
        self.constant(Tensor::scalar(v))
    }

    /// Record a parameter leaf; its gradient is accumulated into the store.
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        let value = store.value(id).clone();
        self.push(Op::Param(id), value)
    }

    // ---- binary ops -------------------------------------------------------

    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.matmul(&self.nodes[b.0].value);
        self.push(Op::MatMul(a, b), v)
    }

    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let (ta, tb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!(ta.shape(), tb.shape(), "add shape mismatch");
        let mut v = ta.clone();
        v.add_assign(tb);
        self.push(Op::Add(a, b), v)
    }

    /// `a [r,c] + bias [1,c]`, broadcasting the bias over rows.
    pub fn add_row_broadcast(&mut self, a: Var, bias: Var) -> Var {
        let (ta, tb) = (&self.nodes[a.0].value, &self.nodes[bias.0].value);
        assert_eq!(tb.rows(), 1, "bias must be a row vector");
        assert_eq!(ta.cols(), tb.cols(), "bias width mismatch");
        let mut v = ta.clone();
        for r in 0..v.rows() {
            for c in 0..v.cols() {
                let x = v.get(r, c) + tb.get(0, c);
                v.set(r, c, x);
            }
        }
        self.push(Op::AddRowBroadcast(a, bias), v)
    }

    /// `a [r,c] ⊙ m [r,1]`, scaling each row of `a` by the matching entry of `m`.
    pub fn mul_col_broadcast(&mut self, a: Var, m: Var) -> Var {
        let (ta, tm) = (&self.nodes[a.0].value, &self.nodes[m.0].value);
        assert_eq!(tm.cols(), 1, "mask must be a column vector");
        assert_eq!(ta.rows(), tm.rows(), "mask height mismatch");
        let mut v = ta.clone();
        for r in 0..v.rows() {
            let s = tm.get(r, 0);
            for x in v.row_slice_mut(r) {
                *x *= s;
            }
        }
        self.push(Op::MulColBroadcast(a, m), v)
    }

    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let (ta, tb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!(ta.shape(), tb.shape(), "sub shape mismatch");
        let mut v = ta.clone();
        v.add_scaled_assign(tb, -1.0);
        self.push(Op::Sub(a, b), v)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let (ta, tb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!(ta.shape(), tb.shape(), "mul shape mismatch");
        let mut v = ta.clone();
        for (x, y) in v.data_mut().iter_mut().zip(tb.data().iter()) {
            *x *= y;
        }
        self.push(Op::Mul(a, b), v)
    }

    // ---- unary ops --------------------------------------------------------

    pub fn scale(&mut self, a: Var, c: f32) -> Var {
        let v = self.nodes[a.0].value.map(|x| x * c);
        self.push(Op::Scale(a, c), v)
    }

    pub fn add_scalar(&mut self, a: Var, c: f32) -> Var {
        let v = self.nodes[a.0].value.map(|x| x + c);
        self.push(Op::AddScalar(a, c), v)
    }

    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(|x| x.max(0.0));
        self.push(Op::Relu(a), v)
    }

    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(f32::tanh);
        self.push(Op::Tanh(a), v)
    }

    pub fn sigmoid(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(Op::Sigmoid(a), v)
    }

    /// Elementwise `exp`, with inputs clamped to ±30 to avoid overflow in the
    /// VAE's `exp(logvar)` term early in training.
    pub fn exp(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(|x| x.clamp(-30.0, 30.0).exp());
        self.push(Op::Exp(a), v)
    }

    /// Row-wise softmax with max-subtraction for numerical stability.
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let ta = &self.nodes[a.0].value;
        let mut v = ta.clone();
        for r in 0..v.rows() {
            let row = v.row_slice_mut(r);
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for x in row.iter_mut() {
                *x = (*x - max).exp();
                sum += *x;
            }
            for x in row.iter_mut() {
                *x /= sum;
            }
        }
        self.push(Op::SoftmaxRows(a), v)
    }

    // ---- shape ops --------------------------------------------------------

    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.concat_cols(&self.nodes[b.0].value);
        self.push(Op::ConcatCols(a, b), v)
    }

    /// Concatenate an arbitrary list column-wise (left fold).
    pub fn concat_cols_all(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_cols_all needs at least one part");
        let mut acc = parts[0];
        for &p in &parts[1..] {
            acc = self.concat_cols(acc, p);
        }
        acc
    }

    /// Stack tensors vertically (used to batch per-sample encodings).
    pub fn stack_rows(&mut self, parts: &[Var]) -> Var {
        let tensors: Vec<&Tensor> = parts.iter().map(|p| &self.nodes[p.0].value).collect();
        let v = Tensor::stack_rows(&tensors);
        self.push(Op::StackRows(parts.to_vec()), v)
    }

    /// Column sums: `[r,c] -> [1,c]`.
    pub fn sum_rows(&mut self, a: Var) -> Var {
        let ta = &self.nodes[a.0].value;
        let mut v = Tensor::zeros(1, ta.cols());
        for r in 0..ta.rows() {
            for c in 0..ta.cols() {
                v.set(0, c, v.get(0, c) + ta.get(r, c));
            }
        }
        self.push(Op::SumRows(a), v)
    }

    /// Column means: `[r,c] -> [1,c]`.
    pub fn mean_rows(&mut self, a: Var) -> Var {
        let rows = self.nodes[a.0].value.rows().max(1) as f32;
        let s = self.sum_rows(a);
        self.scale(s, 1.0 / rows)
    }

    /// Sum of every element: `[r,c] -> [1,1]`.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let v = Tensor::scalar(self.nodes[a.0].value.sum());
        self.push(Op::SumAll(a), v)
    }

    /// Mean of every element: `[r,c] -> [1,1]`.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let n = self.nodes[a.0].value.len().max(1) as f32;
        let s = self.sum_all(a);
        self.scale(s, 1.0 / n)
    }

    /// Column slice `[r, from..to)`.
    pub fn slice_cols(&mut self, a: Var, from: usize, to: usize) -> Var {
        let ta = &self.nodes[a.0].value;
        assert!(from < to && to <= ta.cols(), "slice_cols out of range");
        let mut v = Tensor::zeros(ta.rows(), to - from);
        for r in 0..ta.rows() {
            v.row_slice_mut(r).copy_from_slice(&ta.row_slice(r)[from..to]);
        }
        self.push(Op::SliceCols(a, from, to), v)
    }

    pub fn transpose(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.transposed();
        self.push(Op::Transpose(a), v)
    }

    // ---- composed helpers ---------------------------------------------------

    /// Mean squared error between `pred` and a constant `target`.
    pub fn mse(&mut self, pred: Var, target: Var) -> Var {
        let d = self.sub(pred, target);
        let sq = self.mul(d, d);
        self.mean_all(sq)
    }

    /// KL( N(mu, exp(logvar)) ‖ N(0, 1) ), summed over latent dims and
    /// averaged over the batch: `-0.5 * Σ (1 + logvar - mu² - exp(logvar))`.
    pub fn kl_standard_normal(&mut self, mu: Var, logvar: Var) -> Var {
        let batch = self.value(mu).rows().max(1) as f32;
        let mu2 = self.mul(mu, mu);
        let var = self.exp(logvar);
        let one_plus = self.add_scalar(logvar, 1.0);
        let t = self.sub(one_plus, mu2);
        let t = self.sub(t, var);
        let s = self.sum_all(t);
        self.scale(s, -0.5 / batch)
    }

    /// Reparameterization trick: `mu + eps ⊙ exp(logvar / 2)` with `eps`
    /// passed in as a constant noise tensor.
    pub fn reparameterize(&mut self, mu: Var, logvar: Var, eps: Var) -> Var {
        let half = self.scale(logvar, 0.5);
        let std = self.exp(half);
        let noise = self.mul(eps, std);
        self.add(mu, noise)
    }

    // ---- backward -----------------------------------------------------------

    /// Backpropagate from scalar `loss`, accumulating parameter gradients
    /// into `store` — either the shared [`ParamStore`] (serial training) or a
    /// thread-local [`GradBuffer`](crate::params::GradBuffer) (data-parallel
    /// training). Returns the loss value.
    ///
    /// # Panics
    /// Panics if `loss` is not `1x1`.
    pub fn backward<A: GradAccumulator>(&self, loss: Var, store: &mut A) -> f32 {
        assert_eq!(self.nodes[loss.0].value.shape(), (1, 1), "loss must be scalar");
        let mut grads: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        grads[loss.0] = Some(Tensor::scalar(1.0));

        for i in (0..self.nodes.len()).rev() {
            let g = match grads[i].take() {
                Some(g) => g,
                None => continue,
            };
            match &self.nodes[i].op {
                Op::Constant => {}
                Op::Param(id) => store.accumulate(*id, &g),
                Op::MatMul(a, b) => {
                    let ga = g.matmul_nt(&self.nodes[b.0].value);
                    let gb = self.nodes[a.0].value.matmul_tn(&g);
                    accumulate(&mut grads, a.0, ga);
                    accumulate(&mut grads, b.0, gb);
                }
                Op::Add(a, b) => {
                    accumulate(&mut grads, a.0, g.clone());
                    accumulate(&mut grads, b.0, g);
                }
                Op::AddRowBroadcast(a, bias) => {
                    let mut gb = Tensor::zeros(1, g.cols());
                    for r in 0..g.rows() {
                        for c in 0..g.cols() {
                            gb.set(0, c, gb.get(0, c) + g.get(r, c));
                        }
                    }
                    accumulate(&mut grads, a.0, g);
                    accumulate(&mut grads, bias.0, gb);
                }
                Op::MulColBroadcast(a, m) => {
                    let (ta, tm) = (&self.nodes[a.0].value, &self.nodes[m.0].value);
                    let mut ga = g.clone();
                    let mut gm = Tensor::zeros(tm.rows(), 1);
                    for r in 0..g.rows() {
                        let s = tm.get(r, 0);
                        let mut dot = 0.0;
                        for c in 0..g.cols() {
                            dot += g.get(r, c) * ta.get(r, c);
                        }
                        gm.set(r, 0, dot);
                        for x in ga.row_slice_mut(r) {
                            *x *= s;
                        }
                    }
                    accumulate(&mut grads, a.0, ga);
                    accumulate(&mut grads, m.0, gm);
                }
                Op::Sub(a, b) => {
                    accumulate(&mut grads, a.0, g.clone());
                    accumulate(&mut grads, b.0, g.map(|x| -x));
                }
                Op::Mul(a, b) => {
                    let mut ga = g.clone();
                    for (x, y) in ga.data_mut().iter_mut().zip(self.nodes[b.0].value.data()) {
                        *x *= y;
                    }
                    let mut gb = g;
                    for (x, y) in gb.data_mut().iter_mut().zip(self.nodes[a.0].value.data()) {
                        *x *= y;
                    }
                    accumulate(&mut grads, a.0, ga);
                    accumulate(&mut grads, b.0, gb);
                }
                Op::Scale(a, c) => accumulate(&mut grads, a.0, g.map(|x| x * c)),
                Op::AddScalar(a, c) => {
                    debug_assert!(c.is_finite());
                    accumulate(&mut grads, a.0, g);
                }
                Op::Relu(a) => {
                    let mut ga = g;
                    for (x, y) in ga.data_mut().iter_mut().zip(self.nodes[a.0].value.data()) {
                        if *y <= 0.0 {
                            *x = 0.0;
                        }
                    }
                    accumulate(&mut grads, a.0, ga);
                }
                Op::Tanh(a) => {
                    let mut ga = g;
                    for (x, y) in ga.data_mut().iter_mut().zip(self.nodes[i].value.data()) {
                        *x *= 1.0 - y * y;
                    }
                    accumulate(&mut grads, a.0, ga);
                }
                Op::Sigmoid(a) => {
                    let mut ga = g;
                    for (x, y) in ga.data_mut().iter_mut().zip(self.nodes[i].value.data()) {
                        *x *= y * (1.0 - y);
                    }
                    accumulate(&mut grads, a.0, ga);
                }
                Op::Exp(a) => {
                    let mut ga = g;
                    for (x, y) in ga.data_mut().iter_mut().zip(self.nodes[i].value.data()) {
                        *x *= y;
                    }
                    accumulate(&mut grads, a.0, ga);
                }
                Op::SoftmaxRows(a) => {
                    let y = &self.nodes[i].value;
                    let mut ga = Tensor::zeros(y.rows(), y.cols());
                    for r in 0..y.rows() {
                        let dot: f32 = (0..y.cols()).map(|c| g.get(r, c) * y.get(r, c)).sum();
                        for c in 0..y.cols() {
                            ga.set(r, c, y.get(r, c) * (g.get(r, c) - dot));
                        }
                    }
                    accumulate(&mut grads, a.0, ga);
                }
                Op::ConcatCols(a, b) => {
                    let ca = self.nodes[a.0].value.cols();
                    let mut ga = Tensor::zeros(g.rows(), ca);
                    let mut gb = Tensor::zeros(g.rows(), g.cols() - ca);
                    for r in 0..g.rows() {
                        ga.row_slice_mut(r).copy_from_slice(&g.row_slice(r)[..ca]);
                        gb.row_slice_mut(r).copy_from_slice(&g.row_slice(r)[ca..]);
                    }
                    accumulate(&mut grads, a.0, ga);
                    accumulate(&mut grads, b.0, gb);
                }
                Op::StackRows(parts) => {
                    let mut row = 0;
                    for p in parts {
                        let pr = self.nodes[p.0].value.rows();
                        let mut gp = Tensor::zeros(pr, g.cols());
                        for r in 0..pr {
                            gp.row_slice_mut(r).copy_from_slice(g.row_slice(row + r));
                        }
                        row += pr;
                        accumulate(&mut grads, p.0, gp);
                    }
                }
                Op::SumRows(a) => {
                    let rows = self.nodes[a.0].value.rows();
                    let mut ga = Tensor::zeros(rows, g.cols());
                    for r in 0..rows {
                        ga.row_slice_mut(r).copy_from_slice(g.row_slice(0));
                    }
                    accumulate(&mut grads, a.0, ga);
                }
                Op::SumAll(a) => {
                    let ta = &self.nodes[a.0].value;
                    let ga = Tensor::filled(ta.rows(), ta.cols(), g.get(0, 0));
                    accumulate(&mut grads, a.0, ga);
                }
                Op::SliceCols(a, from, _to) => {
                    let ta = &self.nodes[a.0].value;
                    let mut ga = Tensor::zeros(ta.rows(), ta.cols());
                    for r in 0..g.rows() {
                        ga.row_slice_mut(r)[*from..from + g.cols()].copy_from_slice(g.row_slice(r));
                    }
                    accumulate(&mut grads, a.0, ga);
                }
                Op::Transpose(a) => {
                    accumulate(&mut grads, a.0, g.transposed());
                }
            }
        }
        self.nodes[loss.0].value.get(0, 0)
    }
}

fn accumulate(grads: &mut [Option<Tensor>], idx: usize, g: Tensor) {
    match &mut grads[idx] {
        Some(existing) => existing.add_assign(&g),
        slot @ None => *slot = Some(g),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamStore;

    /// Central finite-difference check of d(loss)/d(param) for an arbitrary
    /// scalar-valued builder.
    fn check_gradient(
        store: &mut ParamStore,
        id: ParamId,
        build: impl Fn(&mut Graph, &ParamStore) -> Var,
        tol: f32,
    ) {
        store.zero_grads();
        let mut g = Graph::new();
        let loss = build(&mut g, store);
        g.backward(loss, store);
        let analytic = store.grad(id).clone();

        let eps = 1e-2f32;
        for i in 0..store.value(id).len() {
            let orig = store.value(id).data()[i];
            store.value_mut(id).data_mut()[i] = orig + eps;
            let mut gp = Graph::new();
            let vp = build(&mut gp, store);
            let lp = gp.value(vp).get(0, 0);
            store.value_mut(id).data_mut()[i] = orig - eps;
            let mut gm = Graph::new();
            let vm = build(&mut gm, store);
            let lm = gm.value(vm).get(0, 0);
            store.value_mut(id).data_mut()[i] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let a = analytic.data()[i];
            assert!(
                (a - numeric).abs() <= tol * (1.0 + numeric.abs()),
                "grad mismatch at {i}: analytic={a}, numeric={numeric}"
            );
        }
    }

    fn seeded_param(store: &mut ParamStore, rows: usize, cols: usize, seed: f32) -> ParamId {
        let data: Vec<f32> =
            (0..rows * cols).map(|i| ((i as f32 + seed) * 0.7).sin() * 0.5).collect();
        store.register("p", Tensor::from_vec(rows, cols, data))
    }

    #[test]
    fn forward_values_are_recorded() {
        let mut g = Graph::new();
        let a = g.constant(Tensor::row(vec![1.0, 2.0]));
        let b = g.scale(a, 3.0);
        assert_eq!(g.value(b).data(), &[3.0, 6.0]);
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn matmul_gradient() {
        let mut store = ParamStore::new();
        let w = seeded_param(&mut store, 3, 2, 0.0);
        check_gradient(
            &mut store,
            w,
            |g, s| {
                let x = g.constant(Tensor::from_vec(2, 3, vec![0.1, -0.4, 0.3, 0.7, 0.2, -0.9]));
                let wv = g.param(s, w);
                let y = g.matmul(x, wv);
                g.sum_all(y)
            },
            1e-2,
        );
    }

    #[test]
    fn deep_chain_gradient() {
        let mut store = ParamStore::new();
        let w = seeded_param(&mut store, 2, 2, 3.0);
        check_gradient(
            &mut store,
            w,
            |g, s| {
                let x = g.constant(Tensor::row(vec![0.3, -0.6]));
                let wv = g.param(s, w);
                let h = g.matmul(x, wv);
                let h = g.tanh(h);
                let h = g.matmul(h, wv);
                let h = g.sigmoid(h);
                g.sum_all(h)
            },
            2e-2,
        );
    }

    #[test]
    fn softmax_gradient() {
        let mut store = ParamStore::new();
        let w = seeded_param(&mut store, 1, 4, 1.0);
        check_gradient(
            &mut store,
            w,
            |g, s| {
                let wv = g.param(s, w);
                let sm = g.softmax_rows(wv);
                let weights = g.constant(Tensor::row(vec![1.0, -2.0, 0.5, 3.0]));
                let y = g.mul(sm, weights);
                g.sum_all(y)
            },
            1e-2,
        );
    }

    #[test]
    fn broadcast_ops_gradient() {
        let mut store = ParamStore::new();
        let b = seeded_param(&mut store, 1, 3, 2.0);
        check_gradient(
            &mut store,
            b,
            |g, s| {
                let x = g.constant(Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]));
                let bv = g.param(s, b);
                let y = g.add_row_broadcast(x, bv);
                let mask = g.constant(Tensor::from_vec(2, 1, vec![1.0, 0.5]));
                let y = g.mul_col_broadcast(y, mask);
                let y = g.relu(y);
                g.mean_all(y)
            },
            1e-2,
        );
    }

    #[test]
    fn mask_gradient_flows_into_mask() {
        let mut store = ParamStore::new();
        let m = store.register("m", Tensor::from_vec(2, 1, vec![0.7, -0.2]));
        check_gradient(
            &mut store,
            m,
            |g, s| {
                let x = g.constant(Tensor::from_vec(2, 2, vec![1., 2., 3., 4.]));
                let mv = g.param(s, m);
                let y = g.mul_col_broadcast(x, mv);
                g.sum_all(y)
            },
            1e-2,
        );
    }

    #[test]
    fn concat_slice_stack_gradients() {
        let mut store = ParamStore::new();
        let w = seeded_param(&mut store, 1, 4, 5.0);
        check_gradient(
            &mut store,
            w,
            |g, s| {
                let wv = g.param(s, w);
                let left = g.slice_cols(wv, 0, 2);
                let right = g.slice_cols(wv, 2, 4);
                let cat = g.concat_cols(right, left);
                let stacked = g.stack_rows(&[cat, wv]);
                let scaled = g.scale(stacked, 1.5);
                g.sum_all(scaled)
            },
            1e-2,
        );
    }

    #[test]
    fn transpose_and_mean_rows_gradient() {
        let mut store = ParamStore::new();
        let w = seeded_param(&mut store, 2, 3, 7.0);
        check_gradient(
            &mut store,
            w,
            |g, s| {
                let wv = g.param(s, w);
                let t = g.transpose(wv);
                let m = g.mean_rows(t);
                let sq = g.mul(m, m);
                g.sum_all(sq)
            },
            1e-2,
        );
    }

    #[test]
    fn kl_gradient() {
        let mut store = ParamStore::new();
        let mu = seeded_param(&mut store, 1, 3, 0.0);
        let lv = seeded_param(&mut store, 1, 3, 11.0);
        check_gradient(
            &mut store,
            mu,
            |g, s| {
                let m = g.param(s, mu);
                let l = g.param(s, lv);
                g.kl_standard_normal(m, l)
            },
            1e-2,
        );
        check_gradient(
            &mut store,
            lv,
            |g, s| {
                let m = g.param(s, mu);
                let l = g.param(s, lv);
                g.kl_standard_normal(m, l)
            },
            1e-2,
        );
    }

    #[test]
    fn kl_is_zero_at_standard_normal() {
        let mut g = Graph::new();
        let mu = g.constant(Tensor::zeros(4, 8));
        let lv = g.constant(Tensor::zeros(4, 8));
        let kl = g.kl_standard_normal(mu, lv);
        assert!(g.value(kl).get(0, 0).abs() < 1e-6);
    }

    #[test]
    fn kl_positive_away_from_prior() {
        let mut g = Graph::new();
        let mu = g.constant(Tensor::filled(2, 4, 1.5));
        let lv = g.constant(Tensor::filled(2, 4, -1.0));
        let kl = g.kl_standard_normal(mu, lv);
        assert!(g.value(kl).get(0, 0) > 0.0);
    }

    #[test]
    fn mse_gradient_and_value() {
        let mut store = ParamStore::new();
        let w = seeded_param(&mut store, 1, 2, 4.0);
        check_gradient(
            &mut store,
            w,
            |g, s| {
                let wv = g.param(s, w);
                let target = g.constant(Tensor::row(vec![1.0, -1.0]));
                g.mse(wv, target)
            },
            1e-2,
        );
    }

    #[test]
    fn reparameterize_with_zero_noise_is_identity_on_mu() {
        let mut g = Graph::new();
        let mu = g.constant(Tensor::row(vec![0.3, -0.7]));
        let lv = g.constant(Tensor::row(vec![0.1, 0.2]));
        let eps = g.constant(Tensor::zeros(1, 2));
        let z = g.reparameterize(mu, lv, eps);
        assert_eq!(g.value(z).data(), &[0.3, -0.7]);
    }

    #[test]
    fn param_used_twice_accumulates_gradient() {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::scalar(2.0));
        let mut g = Graph::new();
        let wv = g.param(&store, w);
        let y = g.mul(wv, wv); // y = w², dy/dw = 2w = 4
        g.backward(y, &mut store);
        assert!((store.grad(w).get(0, 0) - 4.0).abs() < 1e-6);
    }

    #[test]
    fn backward_returns_loss_value() {
        let mut store = ParamStore::new();
        let mut g = Graph::new();
        let c = g.constant(Tensor::scalar(42.0));
        let loss = g.scale(c, 0.5);
        assert_eq!(g.backward(loss, &mut store), 21.0);
    }

    #[test]
    #[should_panic(expected = "loss must be scalar")]
    fn backward_rejects_non_scalar_loss() {
        let mut store = ParamStore::new();
        let mut g = Graph::new();
        let c = g.constant(Tensor::row(vec![1.0, 2.0]));
        g.backward(c, &mut store);
    }
}
