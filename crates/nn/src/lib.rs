//! `qpseeker-nn` — a minimal CPU tensor + reverse-mode autograd library.
//!
//! The QPSeeker paper trains its models with PyTorch; this crate is the
//! from-scratch Rust substrate that replaces it. It provides exactly what the
//! QPSeeker architecture needs and nothing more:
//!
//! * [`tensor::Tensor`] — dense rank-2 `f32` matrices,
//! * [`graph::Graph`] — a per-batch autodiff tape (dynamic graphs, because
//!   query plans are trees of varying shape),
//! * [`params::ParamStore`] — persistent parameters addressed by stable ids,
//! * [`layers`] — `Linear`, `Mlp`, `LstmCell`, `MultiHeadCrossAttention`,
//! * [`optim`] — `Adam` and `Sgd`,
//! * [`init::Initializer`] — seeded deterministic weight init.
//!
//! # Example
//!
//! ```
//! use qpseeker_nn::prelude::*;
//!
//! let mut store = ParamStore::new();
//! let mut init = Initializer::new(0);
//! let mlp = Mlp::new(&mut store, &mut init, "f", &[2, 16, 1],
//!                    Activation::Tanh, Activation::Identity);
//! let mut opt = Adam::new(0.01);
//! for _ in 0..10 {
//!     store.zero_grads();
//!     let mut g = Graph::new();
//!     let x = g.constant(Tensor::from_vec(4, 2, vec![0.,0., 0.,1., 1.,0., 1.,1.]));
//!     let t = g.constant(Tensor::from_vec(4, 1, vec![0., 1., 1., 2.]));
//!     let y = mlp.forward(&mut g, &store, x);
//!     let loss = g.mse(y, t);
//!     g.backward(loss, &mut store);
//!     opt.step(&mut store);
//! }
//! ```

pub mod act;
pub mod gradcheck;
pub mod graph;
pub mod infer;
pub mod init;
pub mod isa;
pub mod layers;
pub mod optim;
pub mod pack;
pub mod params;
pub mod tensor;

/// Convenient glob import for downstream crates.
pub mod prelude {
    pub use crate::gradcheck::{check_gradient, GradCheckReport};
    pub use crate::graph::{Graph, Var};
    pub use crate::infer::{with_thread_scratch, LstmStateBuf, ScratchArena};
    pub use crate::init::Initializer;
    pub use crate::isa::Isa;
    pub use crate::layers::{
        Activation, Linear, LstmCell, LstmState, Mlp, MultiHeadCrossAttention,
    };
    pub use crate::optim::{Adam, Sgd, StepReport};
    pub use crate::pack::PackedGemm;
    pub use crate::params::{GradAccumulator, GradBuffer, Param, ParamId, ParamStore};
    pub use crate::tensor::Tensor;
}
