//! Mid-stream workload drift: a canonical before/after database pair whose
//! *relative* join costs flip, plus a fixed query stream that spans both.
//!
//! The drift scenario backs the online-adaptation tests: a model trained on
//! the pre-drift database keeps serving while the data underneath it shifts
//! to the post-drift shape. A classical optimizer re-plans from fresh
//! statistics and adapts instantly; a frozen neural model keeps ranking
//! plans by the stale shape until it is retrained on post-drift
//! observations.
//!
//! The canonical profile rebalances the fact tables and flips their
//! foreign-key skews:
//!
//! * `cast_info` shrinks 4× and its hot-movie fan-out flattens (Zipf 1.2 →
//!   0.2) — joins through `cast_info` become cheap;
//! * `movie_info` doubles and concentrates (1.1 → 2.0) — the previously
//!   benign `movie_info` join grows a hot spot;
//! * `movie_keyword` doubles and concentrates (1.0 → 1.8).
//!
//! Schema, query templates, and determinism are untouched, so the same
//! query stream is valid on both databases and the only moving part is
//! which join orders are cheap.

use crate::gen::synthetic::{self, SyntheticConfig};
use qpseeker_engine::query::Query;
use qpseeker_storage::datagen::imdb::{self, ImdbDrift};
use qpseeker_storage::Database;

/// The canonical drift profile (see module docs).
pub fn canonical() -> ImdbDrift {
    ImdbDrift {
        size_mult: vec![
            ("cast_info".into(), 0.25),
            ("movie_info".into(), 2.0),
            ("movie_keyword".into(), 2.0),
        ],
        fk_skew: vec![
            ("cast_info".into(), "movie_id".into(), 0.2),
            ("movie_info".into(), "movie_id".into(), 2.0),
            ("movie_keyword".into(), "movie_id".into(), 1.8),
        ],
    }
}

/// The pre-drift database: the stock IMDb shape.
pub fn pre_db(scale: f64, seed: u64) -> Database {
    imdb::generate(scale, seed)
}

/// The post-drift database: same schema and seed, canonical profile applied.
pub fn post_db(scale: f64, seed: u64) -> Database {
    imdb::generate_drifted(scale, seed, &canonical())
}

/// The fixed query stream, drawn against `db` (use the **pre-drift**
/// database so the stream itself is constant across the drift point — only
/// the data underneath moves). Returns `(query, template)` pairs like
/// [`synthetic::generate_queries`].
pub fn stream_queries(db: &Database, n: usize, seed: u64) -> Vec<(Query, String)> {
    synthetic::generate_queries(db, &SyntheticConfig { n_queries: n, seed })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pre_and_post_share_schema() {
        let pre = pre_db(0.05, 3);
        let post = post_db(0.05, 3);
        assert_eq!(pre.catalog.num_tables(), post.catalog.num_tables());
        assert_eq!(pre.catalog.num_joins(), post.catalog.num_joins());
        // The rebalance actually happened.
        assert!(
            post.table("cast_info").unwrap().n_rows() * 2
                < pre.table("cast_info").unwrap().n_rows()
        );
        assert!(
            post.table("movie_info").unwrap().n_rows() > pre.table("movie_info").unwrap().n_rows()
        );
    }

    #[test]
    fn stream_is_valid_on_both_sides_of_the_drift() {
        let pre = pre_db(0.05, 3);
        let post = post_db(0.05, 3);
        let stream = stream_queries(&pre, 12, 9);
        assert_eq!(stream.len(), 12);
        for (q, _) in &stream {
            assert!(q.validate(&pre).is_ok());
            assert!(q.validate(&post).is_ok(), "query {} invalid post-drift", q.id);
        }
    }

    #[test]
    fn stream_is_deterministic() {
        let pre = pre_db(0.05, 3);
        let a = stream_queries(&pre, 6, 4);
        let b = stream_queries(&pre, 6, 4);
        for ((qa, _), (qb, _)) in a.iter().zip(&b) {
            assert_eq!(qa.id, qb.id);
            assert_eq!(qa.num_relations(), qb.num_relations());
        }
    }
}
