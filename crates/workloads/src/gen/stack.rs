//! The Stack workload (Bao's StackExchange workload, paper §6 item 3):
//! 6.2K queries over the Stack-shaped database, one optimizer plan each,
//! joins up to ~12-18 relations deep.

use crate::gen::QueryBuilder;
use crate::qep::{measure_parallel, PlanSource, Workload};
use qpseeker_engine::optimizer::PgOptimizer;
use qpseeker_engine::plan::PlanNode;
use qpseeker_engine::query::Query;
use qpseeker_storage::Database;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration (the paper uses 6.2K queries).
#[derive(Debug, Clone)]
pub struct StackConfig {
    pub n_queries: usize,
    pub seed: u64,
}

impl Default for StackConfig {
    fn default() -> Self {
        Self { n_queries: 600, seed: 0x57ac }
    }
}

const START_TABLES: [&str; 4] = ["question", "answer", "so_user", "site"];

/// Generate queries only.
pub fn generate_queries(db: &Database, cfg: &StackConfig) -> Vec<(Query, String)> {
    let qb = QueryBuilder::new(db);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut out = Vec::with_capacity(cfg.n_queries);
    while out.len() < cfg.n_queries {
        let i = out.len();
        // Stack queries are join-heavy: 3-13 relations (up to ~12-18 joins
        // in the paper; our schema supports ~12 with alias repetition).
        let n_rels = rng.gen_range(3..=13);
        let start = START_TABLES[rng.gen_range(0..START_TABLES.len())];
        let (rels, joins) = qb.grow(&mut rng, start, n_rels, n_rels > 6);
        if rels.len() < 3 {
            continue;
        }
        let mut q = Query::new(format!("stack-{i}"));
        q.relations = rels;
        q.joins = joins;
        let n_filters = rng.gen_range(1..=3);
        qb.add_filters(&mut rng, &mut q, n_filters);
        if !q.is_connected() {
            continue;
        }
        let template = format!("stack-t{}", q.num_joins().min(12));
        out.push((q, template));
    }
    out
}

/// Generate and measure the workload (optimizer plans).
pub fn generate(db: &Database, cfg: &StackConfig) -> Workload {
    let queries = generate_queries(db, cfg);
    let opt = PgOptimizer::new(db);
    let items: Vec<(Query, PlanNode, String)> = queries
        .into_iter()
        .map(|(q, t)| {
            let p = opt.plan(&q);
            (q, p, t)
        })
        .collect();
    let mut qeps = measure_parallel(db, items);
    // Executions that blow the intermediate-result cap are statement
    // timeouts; they carry no usable per-node ground truth.
    qeps.retain(|q| !q.truth.timed_out);
    Workload {
        name: "stack".into(),
        database: db.name.clone(),
        plan_source: PlanSource::DbOptimizer,
        qeps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpseeker_storage::datagen::stack;

    #[test]
    fn queries_are_join_heavy_and_valid() {
        let db = stack::generate(0.05, 4);
        let qs = generate_queries(&db, &StackConfig { n_queries: 60, seed: 2 });
        assert_eq!(qs.len(), 60);
        let mut max_joins = 0;
        for (q, _) in &qs {
            assert!(q.validate(&db).is_ok(), "{}", q.id);
            max_joins = max_joins.max(q.num_joins());
        }
        assert!(max_joins >= 8, "max joins {max_joins}");
    }

    #[test]
    fn workload_measures_all_queries() {
        let db = stack::generate(0.05, 4);
        let w = generate(&db, &StackConfig { n_queries: 25, seed: 2 });
        // A few optimizer plans may hit the statement-timeout cap on heavy
        // join templates and be filtered; the vast majority must survive.
        assert!(w.num_qeps() >= 20 && w.num_qeps() <= 25, "qeps {}", w.num_qeps());
        assert!(w.qeps.iter().all(|q| !q.truth.timed_out));
        assert_eq!(w.plan_source, PlanSource::DbOptimizer);
        assert!(w.summary().runtime_ms.p50 > 0.0);
    }
}
