//! The Synthetic workload (the MSCN training workload, paper §6 item 1).
//!
//! 0–2 joins per query over the IMDb schema, one plan per query from the DB
//! optimizer. Roughly a quarter of the queries are single-table scans —
//! which is exactly why the paper finds QPSeeker's set encoding too sparse
//! to learn well here (Table 2 discussion).

use crate::gen::QueryBuilder;
use crate::qep::{measure_parallel, PlanSource, Workload};
use qpseeker_engine::optimizer::PgOptimizer;
use qpseeker_engine::plan::PlanNode;
use qpseeker_engine::query::Query;
use qpseeker_storage::Database;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration (the paper uses 100K queries; scale down as needed).
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    pub n_queries: usize,
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        Self { n_queries: 1_000, seed: 0x5e17 }
    }
}

/// Start tables for the random walk (MSCN samples over the IMDb fact tables).
const START_TABLES: [&str; 6] =
    ["title", "movie_info", "cast_info", "movie_keyword", "movie_companies", "movie_info_idx"];

/// Generate the queries only (no execution) — used by cross-workload
/// experiments that train elsewhere.
pub fn generate_queries(db: &Database, cfg: &SyntheticConfig) -> Vec<(Query, String)> {
    let qb = QueryBuilder::new(db);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut out = Vec::with_capacity(cfg.n_queries);
    let mut rejected = 0usize;
    while out.len() < cfg.n_queries {
        // The walk starts from IMDb fact tables; on a database without
        // them every draw is rejected, so fail loudly instead of spinning.
        assert!(
            rejected < 100 * (cfg.n_queries + 1),
            "synthetic generator made no progress on database '{}' \
             ({} rejected draws): its schema lacks the IMDb start tables",
            db.name,
            rejected,
        );
        let i = out.len();
        // 0-2 joins; ~25% single-table (matches the paper's observation).
        let n_rels = match rng.gen_range(0..4) {
            0 => 1,
            1 => 2,
            _ => 3,
        };
        let start = START_TABLES[rng.gen_range(0..START_TABLES.len())];
        let (rels, joins) = qb.grow(&mut rng, start, n_rels, false);
        let mut q = Query::new(format!("synth-{i}"));
        q.relations = rels;
        q.joins = joins;
        let n_filters = rng.gen_range(1..=3);
        qb.add_filters(&mut rng, &mut q, n_filters);
        if q.filters.is_empty() {
            rejected += 1;
            continue; // MSCN queries always carry at least one predicate
        }
        let template = format!("synth-{}j", q.num_joins());
        out.push((q, template));
    }
    out
}

/// Generate and measure the full workload (one optimizer plan per query).
pub fn generate(db: &Database, cfg: &SyntheticConfig) -> Workload {
    let queries = generate_queries(db, cfg);
    let opt = PgOptimizer::new(db);
    let items: Vec<(Query, PlanNode, String)> = queries
        .into_iter()
        .map(|(q, t)| {
            let p = opt.plan(&q);
            (q, p, t)
        })
        .collect();
    let mut qeps = measure_parallel(db, items);
    // Executions that blow the intermediate-result cap are statement
    // timeouts; they carry no usable per-node ground truth.
    qeps.retain(|q| !q.truth.timed_out);
    Workload {
        name: "synthetic".into(),
        database: db.name.clone(),
        plan_source: PlanSource::DbOptimizer,
        qeps,
    }
}

/// Setting (b) of §3.1 applied to the Synthetic queries: instead of the one
/// optimizer plan per query, extract a *sample of execution plans per
/// query*. The planning experiments (paper §7.2) train on this variant so
/// the cost model sees plan-space variety, not only optimizer-chosen plans.
pub fn generate_sampled(db: &Database, cfg: &SyntheticConfig, qeps_per_query: usize) -> Workload {
    use crate::sampling::{sample_plans, SamplingConfig};
    let queries = generate_queries(db, cfg);
    let mut items: Vec<(Query, PlanNode, String)> = Vec::new();
    for (q, tpl) in &queries {
        let scfg = SamplingConfig {
            max_orderings: (qeps_per_query * 2).max(12),
            operators_per_ordering: 4,
            keep_fraction: 1.0,
            seed: cfg.seed,
        };
        let mut plans = sample_plans(db, q, &scfg);
        let stride = (plans.len() / qeps_per_query.max(1)).max(1);
        plans = plans.into_iter().step_by(stride).take(qeps_per_query).collect();
        for sp in plans {
            items.push((q.clone(), sp.plan, tpl.clone()));
        }
    }
    let mut qeps = measure_parallel(db, items);
    qeps.retain(|q| !q.truth.timed_out);
    Workload {
        name: "synthetic-sampled".into(),
        database: db.name.clone(),
        plan_source: PlanSource::Sampling,
        qeps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpseeker_storage::datagen::imdb;

    #[test]
    fn queries_have_zero_to_two_joins() {
        let db = imdb::generate(0.05, 2);
        let qs = generate_queries(&db, &SyntheticConfig { n_queries: 100, seed: 1 });
        assert_eq!(qs.len(), 100);
        for (q, _) in &qs {
            assert!(q.num_joins() <= 2, "query {} has {} joins", q.id, q.num_joins());
            assert!(!q.filters.is_empty());
            assert!(q.validate(&db).is_ok());
        }
        // A visible share of single-table queries.
        let singles = qs.iter().filter(|(q, _)| q.num_relations() == 1).count();
        assert!(singles >= 10, "only {singles} single-table queries");
    }

    #[test]
    fn workload_is_one_qep_per_query() {
        let db = imdb::generate(0.05, 2);
        let w = generate(&db, &SyntheticConfig { n_queries: 40, seed: 1 });
        assert_eq!(w.num_qeps(), 40);
        assert_eq!(w.num_queries(), 40);
        assert_eq!(w.plan_source, PlanSource::DbOptimizer);
    }

    #[test]
    fn deterministic() {
        let db = imdb::generate(0.05, 2);
        let a = generate_queries(&db, &SyntheticConfig { n_queries: 20, seed: 7 });
        let b = generate_queries(&db, &SyntheticConfig { n_queries: 20, seed: 7 });
        for ((qa, _), (qb, _)) in a.iter().zip(&b) {
            assert_eq!(qa, qb);
        }
    }

    #[test]
    fn sampled_variant_has_many_plans_per_query() {
        let db = imdb::generate(0.05, 2);
        let w = generate_sampled(&db, &SyntheticConfig { n_queries: 15, seed: 1 }, 4);
        assert_eq!(w.plan_source, PlanSource::Sampling);
        assert!(w.num_qeps() > w.num_queries(), "{} vs {}", w.num_qeps(), w.num_queries());
        // Single-table queries contribute up to 3 scan-op plans each.
        for qep in &w.qeps {
            assert!(qep.plan.validate(&qep.query).is_ok());
        }
    }

    #[test]
    fn cardinality_distribution_has_wide_range() {
        // The paper notes Synthetic spans 1-tuple results to huge ones.
        let db = imdb::generate(0.2, 2);
        let w = generate(&db, &SyntheticConfig { n_queries: 150, seed: 3 });
        let s = w.summary();
        assert!(s.cardinality.min <= 10.0, "min {}", s.cardinality.min);
        assert!(s.cardinality.max >= 1000.0, "max {}", s.cardinality.max);
    }
}
