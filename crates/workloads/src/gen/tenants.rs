//! Mixed-tenant serving streams: several tenants, each with its own
//! database and query distribution, interleaved on one arrival clock.
//!
//! Tenants over a Stack-shaped database draw join-heavy
//! [`crate::gen::stack`] queries; everything else draws MSCN-style
//! [`crate::gen::synthetic`] queries — so a mixed stream exercises both
//! ends of the plan-space spectrum at once. Each tenant re-issues an
//! earlier query **verbatim** with probability `repeat_p`, which is what
//! gives a fingerprint plan cache its hits; a fresh draw comes from a
//! fixed per-tenant pool of distinct queries.
//!
//! Generation is deterministic in `(seed, tenant order, config)`: one
//! `StdRng` drives the shared arrival clock and every per-tenant choice,
//! so two calls with equal inputs produce bitwise-equal streams. That
//! determinism is what the bulkhead chaos suite leans on when it compares
//! a healthy tenant's plans across runs with and without a faulty peer.

use qpseeker_engine::query::Query;
use qpseeker_storage::Database;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::gen::stack::{self, StackConfig};
use crate::gen::synthetic::{self, SyntheticConfig};

/// Knobs for a mixed-tenant stream.
#[derive(Debug, Clone)]
pub struct TenantStreamConfig {
    /// Total requests across all tenants.
    pub n_requests: usize,
    /// Master seed; every derived choice is a pure function of it.
    pub seed: u64,
    /// Mean gap between consecutive arrivals (exponential-ish).
    pub mean_interarrival_ms: f64,
    /// Probability a tenant re-issues one of its earlier queries verbatim.
    pub repeat_p: f64,
    /// Deadline slack granted to each request past its arrival.
    pub deadline_slack_ms: f64,
    /// Distinct queries generated per tenant (the draw pool).
    pub pool_size: usize,
}

impl Default for TenantStreamConfig {
    fn default() -> Self {
        Self {
            n_requests: 200,
            seed: 0x7e4a,
            mean_interarrival_ms: 8.0,
            repeat_p: 0.35,
            deadline_slack_ms: 10_000.0,
            pool_size: 32,
        }
    }
}

/// One arrival of the mixed stream.
#[derive(Debug, Clone)]
pub struct TenantStreamItem {
    pub tenant: String,
    pub query: Query,
    pub arrival_ms: f64,
    pub deadline_ms: f64,
}

fn tenant_pool(tenant_idx: usize, db: &Database, cfg: &TenantStreamConfig) -> Vec<Query> {
    let seed = cfg.seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(tenant_idx as u64 + 1));
    let queries = if db.name.contains("stack") {
        stack::generate_queries(db, &StackConfig { n_queries: cfg.pool_size, seed })
    } else {
        synthetic::generate_queries(db, &SyntheticConfig { n_queries: cfg.pool_size, seed })
    };
    queries
        .into_iter()
        .enumerate()
        .map(|(i, (mut q, _))| {
            // Ids are tenant-scoped so a mixed stream's outcomes stay
            // attributable even when pools collide structurally.
            q.id = format!("t{tenant_idx}-{i}");
            q
        })
        .collect()
}

/// Generate an arrival-ordered mixed-tenant stream. `tenants` pairs each
/// tenant id with its database; order matters (it seeds each pool).
pub fn generate_stream(
    tenants: &[(&str, &Database)],
    cfg: &TenantStreamConfig,
) -> Vec<TenantStreamItem> {
    assert!(!tenants.is_empty(), "tenant stream needs at least one tenant");
    let pools: Vec<Vec<Query>> =
        tenants.iter().enumerate().map(|(i, (_, db))| tenant_pool(i, db, cfg)).collect();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Fresh draws walk a per-tenant shuffled order, so up to `pool_size`
    // fresh queries per tenant are guaranteed distinct: with `repeat_p = 0`
    // and a large enough pool, the stream has no verbatim duplicates at
    // all, which the cache-invalidation tests depend on.
    let orders: Vec<Vec<usize>> = pools
        .iter()
        .map(|pool| {
            let mut order: Vec<usize> = (0..pool.len()).collect();
            for i in (1..order.len()).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            order
        })
        .collect();
    let mut issued: Vec<Vec<usize>> = vec![Vec::new(); tenants.len()];
    let mut clock = 0.0f64;
    let mut out = Vec::with_capacity(cfg.n_requests);
    for _ in 0..cfg.n_requests {
        // Inverse-CDF exponential gap, clamped away from 0 so the virtual
        // admission clock always advances.
        let u: f64 = rng.gen_range(1e-6..1.0);
        clock += (-u.ln()) * cfg.mean_interarrival_ms;
        let t = rng.gen_range(0..tenants.len());
        let pool = &pools[t];
        let history = &mut issued[t];
        let qi = if !history.is_empty() && rng.gen_bool(cfg.repeat_p) {
            history[rng.gen_range(0..history.len())]
        } else {
            let fresh = orders[t][history.len() % pool.len()];
            history.push(fresh);
            fresh
        };
        out.push(TenantStreamItem {
            tenant: tenants[t].0.to_string(),
            query: pool[qi].clone(),
            arrival_ms: clock,
            deadline_ms: clock + cfg.deadline_slack_ms,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dbs() -> (Database, Database) {
        let imdb = qpseeker_storage::datagen::imdb::generate(0.03, 1);
        let stack = qpseeker_storage::datagen::stack::generate(0.03, 2);
        (imdb, stack)
    }

    fn cfg() -> TenantStreamConfig {
        TenantStreamConfig { n_requests: 80, pool_size: 12, ..Default::default() }
    }

    #[test]
    fn stream_is_deterministic_in_the_seed() {
        let (imdb, stack) = dbs();
        let tenants = [("alpha", &imdb), ("beta", &stack)];
        let a = generate_stream(&tenants, &cfg());
        let b = generate_stream(&tenants, &cfg());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.tenant, y.tenant);
            assert_eq!(x.query, y.query);
            assert_eq!(x.arrival_ms.to_bits(), y.arrival_ms.to_bits());
        }
        let c = generate_stream(&tenants, &TenantStreamConfig { seed: 99, ..cfg() });
        assert!(
            a.iter().zip(&c).any(|(x, y)| x.query != y.query || x.tenant != y.tenant),
            "a different seed reshuffles the stream"
        );
    }

    #[test]
    fn arrivals_advance_and_every_tenant_appears() {
        let (imdb, stack) = dbs();
        let stream = generate_stream(&[("alpha", &imdb), ("beta", &stack)], &cfg());
        let mut last = 0.0;
        for item in &stream {
            assert!(item.arrival_ms > last, "clock strictly advances");
            assert!(item.deadline_ms > item.arrival_ms);
            last = item.arrival_ms;
        }
        for t in ["alpha", "beta"] {
            assert!(stream.iter().any(|i| i.tenant == t), "tenant {t} missing from the mix");
        }
    }

    #[test]
    fn repeats_are_verbatim_reissues() {
        let (imdb, stack) = dbs();
        let stream = generate_stream(
            &[("alpha", &imdb), ("beta", &stack)],
            &TenantStreamConfig { repeat_p: 0.6, ..cfg() },
        );
        let mut repeats = 0;
        for (i, item) in stream.iter().enumerate() {
            if let Some(first) =
                stream[..i].iter().find(|p| p.tenant == item.tenant && p.query.id == item.query.id)
            {
                assert_eq!(first.query, item.query, "re-issues are bitwise the same query");
                repeats += 1;
            }
        }
        assert!(repeats > 5, "repeat_p=0.6 over 80 requests produced {repeats} repeats");
    }

    #[test]
    fn stack_tenants_draw_join_heavy_queries() {
        let (imdb, stack) = dbs();
        let stream = generate_stream(&[("alpha", &imdb), ("beta", &stack)], &cfg());
        let max_joins = |t: &str| {
            stream.iter().filter(|i| i.tenant == t).map(|i| i.query.num_joins()).max().unwrap_or(0)
        };
        assert!(
            max_joins("beta") > max_joins("alpha"),
            "the Stack-shaped tenant should reach deeper joins than the synthetic one"
        );
    }
}
