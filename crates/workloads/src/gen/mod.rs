//! Workload generators: Synthetic (MSCN-style), JOB (+light/+extended) and
//! Stack, over the IMDb- and Stack-shaped databases.

pub mod drift;
pub mod job;
pub mod stack;
pub mod synthetic;
pub mod tenants;

use qpseeker_engine::query::{CmpOp, ColRef, Filter, JoinPred, Query, RelRef};
use qpseeker_storage::Database;
use rand::rngs::StdRng;
use rand::Rng;

/// Helper for growing random connected queries over a database's FK graph
/// and drawing realistic filter literals from its statistics.
pub struct QueryBuilder<'a> {
    pub db: &'a Database,
}

impl<'a> QueryBuilder<'a> {
    pub fn new(db: &'a Database) -> Self {
        Self { db }
    }

    /// Grow a connected relation set by random walk over FK edges, starting
    /// from `start`. When `allow_repeat` is set, a table may appear several
    /// times under distinct aliases (`table#2`, `table#3`, ... — JOB-style
    /// self-join templates); otherwise repeats are skipped.
    pub fn grow(
        &self,
        rng: &mut StdRng,
        start: &str,
        n_relations: usize,
        allow_repeat: bool,
    ) -> (Vec<RelRef>, Vec<JoinPred>) {
        let mut relations = vec![RelRef::new(start)];
        let mut joins = Vec::new();
        let mut next_alias_id: usize = 2;
        let mut guard = 0;
        while relations.len() < n_relations && guard < n_relations * 30 {
            guard += 1;
            // Pick a random included alias, then a random FK edge of its table.
            let anchor = &relations[rng.gen_range(0..relations.len())];
            let edges = self.db.catalog.joins_of(&anchor.table);
            if edges.is_empty() {
                continue;
            }
            let e = edges[rng.gen_range(0..edges.len())];
            // The "other" side of the edge relative to the anchor table.
            let (other_table, other_col, anchor_col) = if e.from_table == anchor.table {
                (&e.to_table, &e.to_col, &e.from_col)
            } else {
                (&e.from_table, &e.from_col, &e.to_col)
            };
            let already = relations.iter().any(|r| r.table == *other_table);
            let alias = if already {
                if !allow_repeat || rng.gen_bool(0.6) {
                    continue;
                }
                let a = format!("{other_table}#{next_alias_id}");
                next_alias_id += 1;
                a
            } else {
                other_table.clone()
            };
            joins.push(JoinPred {
                left: ColRef::new(anchor.alias.clone(), anchor_col.clone()),
                right: ColRef::new(alias.clone(), other_col.clone()),
            });
            relations.push(RelRef::aliased(other_table.clone(), alias));
        }
        (relations, joins)
    }

    /// Draw a realistic filter on `alias` (literal sampled from the column's
    /// histogram bounds / MCVs, so selectivities span the real range).
    /// Skips id-like columns, which carry no selectivity semantics.
    pub fn random_filter(&self, rng: &mut StdRng, query: &Query, alias: &str) -> Option<Filter> {
        let table = query.table_of(alias)?;
        let stats = self.db.table_stats(table)?;
        let candidates: Vec<&qpseeker_storage::ColumnStats> = stats
            .columns
            .iter()
            .filter(|c| c.name != "id" && !c.name.ends_with("_id") && c.n_distinct > 1)
            .collect();
        if candidates.is_empty() {
            return None;
        }
        let col = candidates[rng.gen_range(0..candidates.len())];
        let op = CmpOp::ALL[rng.gen_range(0..CmpOp::ALL.len())];
        let value = if op == CmpOp::Eq && !col.mcvs.is_empty() && rng.gen_bool(0.5) {
            // Equality on a common value half the time (high selectivity
            // variance, like real workloads).
            col.mcvs[rng.gen_range(0..col.mcvs.len())].0
        } else {
            let b = &col.histogram.bounds;
            b[rng.gen_range(0..b.len())]
        };
        Some(Filter { col: ColRef::new(alias, col.name.clone()), op, value })
    }

    /// Attach `n` random filters to distinct (alias, column) slots of `query`.
    pub fn add_filters(&self, rng: &mut StdRng, query: &mut Query, n: usize) {
        let aliases: Vec<String> = query.relations.iter().map(|r| r.alias.clone()).collect();
        let mut guard = 0;
        while query.filters.len() < n && guard < n * 20 {
            guard += 1;
            let alias = &aliases[rng.gen_range(0..aliases.len())];
            if let Some(f) = self.random_filter(rng, query, alias) {
                let dup = query.filters.iter().any(|g| g.col == f.col);
                if !dup {
                    query.filters.push(f);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpseeker_storage::datagen::imdb;
    use rand::SeedableRng;

    #[test]
    fn grow_produces_connected_valid_queries() {
        let db = imdb::generate(0.05, 2);
        let qb = QueryBuilder::new(&db);
        let mut rng = StdRng::seed_from_u64(1);
        for n in 1..=8 {
            let (rels, joins) = qb.grow(&mut rng, "title", n, false);
            let mut q = Query::new("g");
            q.relations = rels;
            q.joins = joins;
            assert!(q.validate(&db).is_ok(), "n={n}");
            assert!(q.is_connected(), "n={n}");
            assert!(q.num_relations() <= n);
        }
    }

    #[test]
    fn grow_with_repeats_uses_distinct_aliases() {
        let db = imdb::generate(0.05, 2);
        let qb = QueryBuilder::new(&db);
        let mut rng = StdRng::seed_from_u64(3);
        let (rels, joins) = qb.grow(&mut rng, "title", 14, true);
        let mut q = Query::new("g");
        q.relations = rels.clone();
        q.joins = joins;
        assert!(q.validate(&db).is_ok());
        // With 14 relations over 16 tables and repeats allowed, aliases stay
        // unique even if tables repeat.
        let mut aliases: Vec<&str> = rels.iter().map(|r| r.alias.as_str()).collect();
        aliases.sort_unstable();
        let before = aliases.len();
        aliases.dedup();
        assert_eq!(aliases.len(), before);
    }

    #[test]
    fn filters_reference_valid_columns_and_skip_ids() {
        let db = imdb::generate(0.05, 2);
        let qb = QueryBuilder::new(&db);
        let mut rng = StdRng::seed_from_u64(5);
        let (rels, joins) = qb.grow(&mut rng, "title", 3, false);
        let mut q = Query::new("g");
        q.relations = rels;
        q.joins = joins;
        qb.add_filters(&mut rng, &mut q, 4);
        assert!(q.validate(&db).is_ok());
        for f in &q.filters {
            assert!(!f.col.column.ends_with("_id") && f.col.column != "id");
        }
        // No duplicate filter slots.
        let mut slots: Vec<(String, String)> =
            q.filters.iter().map(|f| (f.col.alias.clone(), f.col.column.clone())).collect();
        slots.sort();
        let n = slots.len();
        slots.dedup();
        assert_eq!(slots.len(), n);
    }
}
