//! The JOB workload family (Join Order Benchmark shape).
//!
//! * **JOB**: 113 queries instantiated from 33 templates (multi-join, up to
//!   16 joins, correlated filters); the training workload is an
//!   *augmentation* — 50K QEPs sampled from each query's plan space (§5.1).
//! * **JOB-light**: 70 easier queries (≤ 4 joins), evaluation only.
//! * **JOB-extended**: 24 harder queries (many joins), evaluation only.

use crate::gen::QueryBuilder;
use crate::qep::{measure_parallel, PlanSource, Workload};
use crate::sampling::{sample_plans, SamplingConfig};
use qpseeker_engine::plan::PlanNode;
use qpseeker_engine::query::Query;
use qpseeker_storage::Database;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the JOB family.
#[derive(Debug, Clone)]
pub struct JobConfig {
    pub n_templates: usize,
    pub n_queries: usize,
    /// Total QEPs produced by plan-space sampling (paper: 50K).
    pub target_qeps: usize,
    /// Fraction of cheapest candidate plans kept per query (paper: 0.15).
    /// `1.0` keeps a uniform spread over the whole sampled plan space,
    /// which gives the cost model coverage of *bad* plans too.
    pub keep_fraction: f64,
    pub seed: u64,
}

impl Default for JobConfig {
    fn default() -> Self {
        Self {
            n_templates: 33,
            n_queries: 113,
            target_qeps: 2_000,
            keep_fraction: 0.15,
            seed: 0x10b,
        }
    }
}

/// One JOB template: a fixed join structure plus filter slots; instances
/// draw different literals.
#[derive(Debug, Clone)]
struct Template {
    id: usize,
    base: Query,
    n_filters: usize,
}

fn build_templates(db: &Database, cfg: &JobConfig) -> Vec<Template> {
    let qb = QueryBuilder::new(db);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut out = Vec::with_capacity(cfg.n_templates);
    let mut attempts = 0;
    while out.len() < cfg.n_templates && attempts < cfg.n_templates * 20 {
        attempts += 1;
        let t = out.len();
        // Sizes sweep 3..=17 relations (2..=16 joins), biased to the middle
        // like the real JOB.
        let n_rels = 3 + (t * 7) % 15;
        let (rels, joins) = qb.grow(&mut rng, "title", n_rels, n_rels > 8);
        if rels.len() < 3 {
            continue;
        }
        let mut base = Query::new(format!("job-t{t}"));
        base.relations = rels;
        base.joins = joins;
        if !base.is_connected() {
            continue;
        }
        let n_filters = rng.gen_range(1..=4);
        out.push(Template { id: t, base, n_filters });
    }
    out
}

/// The 113 JOB queries (query, template-label) without plans.
pub fn job_queries(db: &Database, cfg: &JobConfig) -> Vec<(Query, String)> {
    let templates = build_templates(db, cfg);
    let qb = QueryBuilder::new(db);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xbeef);
    let mut out = Vec::with_capacity(cfg.n_queries);
    let mut i = 0;
    while out.len() < cfg.n_queries {
        let t = &templates[i % templates.len()];
        i += 1;
        let mut q = t.base.clone();
        q.id = format!("job-{}", out.len());
        q.filters.clear();
        qb.add_filters(&mut rng, &mut q, t.n_filters);
        out.push((q, format!("job-t{}", t.id)));
    }
    out
}

/// JOB-light: 70 queries, at most 4 joins, single numeric filters.
pub fn job_light_queries(db: &Database, seed: u64) -> Vec<(Query, String)> {
    let qb = QueryBuilder::new(db);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x11547);
    let mut out = Vec::with_capacity(70);
    while out.len() < 70 {
        let i = out.len();
        let n_rels = rng.gen_range(2..=5);
        let (rels, joins) = qb.grow(&mut rng, "title", n_rels, false);
        let mut q = Query::new(format!("job-light-{i}"));
        q.relations = rels;
        q.joins = joins;
        qb.add_filters(&mut rng, &mut q, 1);
        if q.num_joins() > 4 || !q.is_connected() {
            continue;
        }
        out.push((q, format!("job-light-t{}", i % 10)));
    }
    out
}

/// JOB-extended: 24 heavier queries (6-12 joins, several filters).
pub fn job_extended_queries(db: &Database, seed: u64) -> Vec<(Query, String)> {
    let qb = QueryBuilder::new(db);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xe87e4d);
    let mut out = Vec::with_capacity(24);
    while out.len() < 24 {
        let i = out.len();
        let n_rels = rng.gen_range(7..=13);
        let (rels, joins) = qb.grow(&mut rng, "title", n_rels, true);
        if rels.len() < 7 {
            continue;
        }
        let mut q = Query::new(format!("job-ext-{i}"));
        q.relations = rels;
        q.joins = joins;
        qb.add_filters(&mut rng, &mut q, 3);
        if !q.is_connected() {
            continue;
        }
        out.push((q, format!("job-ext-t{}", i % 8)));
    }
    out
}

/// The JOB *training* workload: plan-space sampling over the 113 queries,
/// producing ~`target_qeps` measured QEPs (paper: 50K).
pub fn generate(db: &Database, cfg: &JobConfig) -> Workload {
    let queries = job_queries(db, cfg);
    let per_query = (cfg.target_qeps / queries.len().max(1)).max(1);
    let mut items: Vec<(Query, PlanNode, String)> = Vec::with_capacity(cfg.target_qeps);
    for (q, template) in &queries {
        let scfg = SamplingConfig {
            max_orderings: (per_query * 2).max(40),
            operators_per_ordering: 3,
            keep_fraction: cfg.keep_fraction,
            seed: cfg.seed,
        };
        let mut plans = sample_plans(db, q, &scfg);
        if cfg.keep_fraction >= 1.0 {
            // Uniform coverage: stride through the cost-sorted candidates
            // so cheap, medium and catastrophic plans all appear.
            let stride = (plans.len() / per_query).max(1);
            plans = plans.into_iter().step_by(stride).take(per_query).collect();
        } else {
            plans.truncate(per_query);
        }
        for sp in plans {
            items.push((q.clone(), sp.plan, template.clone()));
        }
    }
    let mut qeps = measure_parallel(db, items);
    // Sampled plans that blow the intermediate-result cap correspond to
    // statement-timeout executions; they have no usable target values and
    // are dropped from the training set (the paper's execution runs simply
    // never completed such plans either).
    qeps.retain(|q| !q.truth.timed_out);
    Workload {
        name: "job".into(),
        database: db.name.clone(),
        plan_source: PlanSource::Sampling,
        qeps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpseeker_storage::datagen::imdb;

    fn db() -> Database {
        imdb::generate(0.05, 2)
    }

    #[test]
    fn job_queries_shape() {
        let db = db();
        let cfg = JobConfig { n_queries: 30, n_templates: 10, ..Default::default() };
        let qs = job_queries(&db, &cfg);
        assert_eq!(qs.len(), 30);
        let mut max_joins = 0;
        for (q, _) in &qs {
            assert!(q.validate(&db).is_ok(), "{} invalid", q.id);
            assert!(q.is_connected());
            max_joins = max_joins.max(q.num_joins());
        }
        assert!(max_joins >= 8, "JOB must contain many-join queries, max {max_joins}");
    }

    #[test]
    fn templates_share_structure_but_differ_in_literals() {
        let db = db();
        let cfg = JobConfig { n_queries: 20, n_templates: 5, ..Default::default() };
        let qs = job_queries(&db, &cfg);
        // Queries 0 and 5 come from the same template (round-robin).
        let (q0, t0) = &qs[0];
        let (q5, t5) = &qs[5];
        assert_eq!(t0, t5);
        assert_eq!(q0.relations, q5.relations);
        assert_eq!(q0.joins, q5.joins);
        assert_ne!(q0.filters, q5.filters);
    }

    #[test]
    fn job_light_is_light() {
        let db = db();
        let qs = job_light_queries(&db, 0);
        assert_eq!(qs.len(), 70);
        for (q, _) in &qs {
            assert!(q.num_joins() <= 4);
            assert!(q.validate(&db).is_ok());
        }
    }

    #[test]
    fn job_extended_is_heavy() {
        let db = db();
        let qs = job_extended_queries(&db, 0);
        assert_eq!(qs.len(), 24);
        for (q, _) in &qs {
            assert!(q.num_joins() >= 6, "{} joins", q.num_joins());
            assert!(q.validate(&db).is_ok());
        }
    }

    #[test]
    fn sampled_workload_has_many_qeps_per_query() {
        let db = db();
        let cfg = JobConfig { n_templates: 4, n_queries: 8, target_qeps: 80, ..Default::default() };
        let w = generate(&db, &cfg);
        assert_eq!(w.plan_source, PlanSource::Sampling);
        assert!(
            w.num_qeps() > w.num_queries(),
            "{} qeps / {} queries",
            w.num_qeps(),
            w.num_queries()
        );
        // Same query under different plans can have different runtimes but
        // identical cardinality (cardinality is plan-invariant).
        use std::collections::HashMap;
        let mut by_query: HashMap<&str, Vec<&crate::qep::Qep>> = HashMap::new();
        for qep in &w.qeps {
            by_query.entry(qep.query.id.as_str()).or_default().push(qep);
        }
        let mut saw_multi = false;
        for (_, qeps) in by_query {
            if qeps.len() > 1 {
                saw_multi = true;
                let card = qeps[0].truth.rows;
                for q in &qeps {
                    if !q.truth.timed_out {
                        assert_eq!(q.truth.rows, card, "cardinality must be plan-invariant");
                    }
                }
            }
        }
        assert!(saw_multi);
    }
}
