//! `qpseeker-workloads` — workload generators and plan-space sampling.
//!
//! Reproduces the five workloads of the paper's Table 1:
//!
//! | Workload   | Queries | QEPs  | Plan source  | Database |
//! |------------|---------|-------|--------------|----------|
//! | Synthetic  | 100K    | 100K  | DB optimizer | IMDb     |
//! | JOB        | 113     | 50K   | sampling     | IMDb     |
//! | Stack      | 6.2K    | 6.2K  | DB optimizer | Stack    |
//! | JOB-light  | 70      | —     | eval only    | IMDb     |
//! | JOB-ext.   | 24      | —     | eval only    | IMDb     |
//!
//! Counts scale via each generator's config (defaults are ~1-5% of the
//! paper's, keeping the same *ratios*; benches can raise them).
//!
//! [`sampling`] implements §5.1: enumerate connected left-deep join
//! orderings, assign random operators, rank by the paper's user-defined cost
//! model, keep the cheapest 15%.

pub mod gen;
pub mod qep;
pub mod sampling;

pub use gen::drift;
pub use gen::job::{self, JobConfig};
pub use gen::stack::{self, StackConfig};
pub use gen::synthetic::{self, SyntheticConfig};
pub use gen::tenants::{self, TenantStreamConfig, TenantStreamItem};
pub use qep::{Distribution, PlanSource, Qep, Workload, WorkloadSummary};
pub use sampling::{enumerate_orderings, sample_plans, SamplingConfig};
