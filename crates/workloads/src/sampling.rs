//! Query-plan-space sampling (paper §5.1).
//!
//! From the query graph we enumerate join orderings (connected, left-deep),
//! assign a random physical operator to every node, rank the candidate plans
//! with the paper's user-defined cost model, and keep the cheapest 15% as
//! the query's plan set. Enumeration is capped (the space is factorial) with
//! seeded random completion beyond the cap.

use qpseeker_engine::inject::LeftDeepSpec;
use qpseeker_engine::paper_cost::PaperCostModel;
use qpseeker_engine::plan::{JoinOp, PlanNode, ScanOp};
use qpseeker_engine::query::Query;
use qpseeker_storage::Database;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Sampling configuration.
#[derive(Debug, Clone)]
pub struct SamplingConfig {
    /// Cap on enumerated join orderings per query.
    pub max_orderings: usize,
    /// Operator assignments drawn per ordering.
    pub operators_per_ordering: usize,
    /// Fraction of cheapest plans kept (the paper uses 15%).
    pub keep_fraction: f64,
    pub seed: u64,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        Self { max_orderings: 200, operators_per_ordering: 4, keep_fraction: 0.15, seed: 0 }
    }
}

/// Enumerate connected left-deep join orderings of `query`, up to `cap`.
/// Orderings are alias sequences; every prefix is connected in the join
/// graph (no cross products).
pub fn enumerate_orderings(query: &Query, cap: usize) -> Vec<Vec<String>> {
    let mut out = Vec::new();
    let aliases: Vec<String> = query.relations.iter().map(|r| r.alias.clone()).collect();
    if aliases.len() == 1 {
        return vec![aliases];
    }
    for start in &aliases {
        let mut joined = BTreeSet::new();
        joined.insert(start.clone());
        let mut prefix = vec![start.clone()];
        dfs(query, &mut joined, &mut prefix, &mut out, cap);
        if out.len() >= cap {
            break;
        }
    }
    out
}

fn dfs(
    query: &Query,
    joined: &mut BTreeSet<String>,
    prefix: &mut Vec<String>,
    out: &mut Vec<Vec<String>>,
    cap: usize,
) {
    if out.len() >= cap {
        return;
    }
    if prefix.len() == query.relations.len() {
        out.push(prefix.clone());
        return;
    }
    for next in query.neighbors(joined) {
        joined.insert(next.clone());
        prefix.push(next.clone());
        dfs(query, joined, prefix, out, cap);
        prefix.pop();
        joined.remove(&next);
        if out.len() >= cap {
            return;
        }
    }
}

/// A sampled candidate plan with its user-defined-cost rank key.
#[derive(Debug, Clone)]
pub struct SampledPlan {
    pub plan: PlanNode,
    pub paper_cost: f64,
}

/// Sample the plan space of one query per §5.1 and keep the top
/// `keep_fraction` by the paper cost model.
pub fn sample_plans(db: &Database, query: &Query, cfg: &SamplingConfig) -> Vec<SampledPlan> {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ fnv(query.id.as_bytes()));
    let orderings = enumerate_orderings(query, cfg.max_orderings);
    if orderings.is_empty() {
        return Vec::new();
    }
    let model = PaperCostModel::new(db);
    let mut candidates = Vec::new();
    for ordering in &orderings {
        for _ in 0..cfg.operators_per_ordering {
            let scans: Vec<(String, ScanOp)> = ordering
                .iter()
                .map(|a| (a.clone(), ScanOp::ALL[rng.gen_range(0..ScanOp::ALL.len())]))
                .collect();
            let joins: Vec<JoinOp> = (1..ordering.len())
                .map(|_| JoinOp::ALL[rng.gen_range(0..JoinOp::ALL.len())])
                .collect();
            let spec = LeftDeepSpec { scans, joins };
            let Ok(plan) = spec.compile(query) else { continue };
            let paper_cost = model.plan_cost(query, &plan);
            candidates.push(SampledPlan { plan, paper_cost });
        }
    }
    // Dedup identical plans (same ordering can draw the same operators).
    candidates.sort_by(|a, b| a.paper_cost.partial_cmp(&b.paper_cost).expect("finite cost"));
    candidates.dedup_by(|a, b| a.plan == b.plan);
    let keep =
        ((candidates.len() as f64 * cfg.keep_fraction).ceil() as usize).clamp(1, candidates.len());
    candidates.truncate(keep);
    candidates
}

fn fnv(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpseeker_engine::query::{ColRef, JoinPred, RelRef};
    use qpseeker_storage::datagen::imdb;

    fn star_query(n_arms: usize) -> Query {
        // title joined with n_arms fact tables (star): orderings = ways to
        // interleave arms after title appears... enumerable.
        let arms = ["movie_info", "movie_keyword", "cast_info", "movie_companies"];
        let mut q = Query::new("star");
        q.relations.push(RelRef::new("title"));
        for arm in arms.iter().take(n_arms) {
            q.relations.push(RelRef::new(*arm));
            q.joins.push(JoinPred {
                left: ColRef::new(*arm, "movie_id"),
                right: ColRef::new("title", "id"),
            });
        }
        q
    }

    #[test]
    fn ordering_count_for_two_relation_query() {
        let q = star_query(1);
        let o = enumerate_orderings(&q, 1000);
        // Two relations, connected: both orders are valid.
        assert_eq!(o.len(), 2);
    }

    #[test]
    fn ordering_count_for_star_query() {
        // Star with center c and arms a1..a3: valid left-deep orders are all
        // permutations where the center comes first or second (every prefix
        // must be connected). Count = 3! (center first) + 3·2! · ... :
        // center in position 1: 3! = 6; center second: 3 choices for first
        // arm, then 2! orders of the rest = 6. Total 12.
        let q = star_query(3);
        let o = enumerate_orderings(&q, 10_000);
        assert_eq!(o.len(), 12);
        // Every prefix of every ordering is connected.
        for ord in &o {
            let mut joined = BTreeSet::new();
            joined.insert(ord[0].clone());
            for a in &ord[1..] {
                assert!(!q.joins_between(&joined, a).is_empty(), "disconnected prefix in {ord:?}");
                joined.insert(a.clone());
            }
        }
    }

    #[test]
    fn enumeration_respects_cap() {
        let q = star_query(4);
        let o = enumerate_orderings(&q, 7);
        assert_eq!(o.len(), 7);
    }

    #[test]
    fn sampled_plans_are_valid_and_ranked() {
        let db = imdb::generate(0.05, 2);
        let q = star_query(3);
        let cfg = SamplingConfig::default();
        let plans = sample_plans(&db, &q, &cfg);
        assert!(!plans.is_empty());
        for p in &plans {
            assert!(p.plan.validate(&q).is_ok());
            assert!(p.plan.is_left_deep());
        }
        // Ranked ascending by paper cost.
        for w in plans.windows(2) {
            assert!(w[0].paper_cost <= w[1].paper_cost);
        }
    }

    #[test]
    fn keep_fraction_limits_output() {
        let db = imdb::generate(0.05, 2);
        let q = star_query(3);
        let all =
            sample_plans(&db, &q, &SamplingConfig { keep_fraction: 1.0, ..Default::default() });
        let kept =
            sample_plans(&db, &q, &SamplingConfig { keep_fraction: 0.15, ..Default::default() });
        assert!(kept.len() < all.len());
        assert!(kept.len() >= all.len() * 10 / 100, "15% floor: {} of {}", kept.len(), all.len());
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let db = imdb::generate(0.05, 2);
        let q = star_query(2);
        let a = sample_plans(&db, &q, &SamplingConfig::default());
        let b = sample_plans(&db, &q, &SamplingConfig::default());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.plan, y.plan);
        }
        let c = sample_plans(&db, &q, &SamplingConfig { seed: 9, ..Default::default() });
        // Different seed gives (almost surely) different operator draws.
        let same = a.len() == c.len() && a.iter().zip(&c).all(|(x, y)| x.plan == y.plan);
        assert!(!same, "different seeds should sample differently");
    }

    #[test]
    fn plans_within_a_set_differ() {
        let db = imdb::generate(0.05, 2);
        let q = star_query(3);
        let plans = sample_plans(&db, &q, &SamplingConfig::default());
        for i in 1..plans.len() {
            assert_ne!(plans[0].plan, plans[i].plan, "sampled plans must be deduped");
        }
    }

    #[test]
    fn single_relation_query_yields_scan_plans() {
        let db = imdb::generate(0.05, 2);
        let mut q = Query::new("single");
        q.relations.push(RelRef::new("title"));
        let plans = sample_plans(&db, &q, &SamplingConfig::default());
        assert!(!plans.is_empty());
        assert!(plans.iter().all(|p| p.plan.num_joins() == 0));
    }
}
