//! QEPs (query-execution-plan pairs) and workloads.
//!
//! Each unique pair of query and execution plan is a *QEP* (paper §3.1),
//! characterized by its cardinality, computational cost, and runtime — the
//! three target values QPSeeker learns. A [`Workload`] is a named bag of
//! QEPs plus metadata (plan source, template labels for Fig. 5).

use qpseeker_engine::executor::{ExecutionResult, Executor};
use qpseeker_engine::plan::PlanNode;
use qpseeker_engine::query::Query;
use qpseeker_storage::Database;
use serde::{Deserialize, Serialize};

/// Where a workload's plans came from (Table 1's "Plan Source" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlanSource {
    /// One plan per query, produced by the DB optimizer.
    DbOptimizer,
    /// Many plans per query, sampled from the plan space (§5.1).
    Sampling,
}

/// One (query, plan) pair with its ground-truth measurements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Qep {
    pub query: Query,
    pub plan: PlanNode,
    /// Template label (queries instantiated from the same template share it;
    /// used for the latent-space clustering of Fig. 5).
    pub template: String,
    /// Ground-truth execution profile (per-node cardinality/cost/time in
    /// postorder; root = whole plan).
    pub truth: ExecutionResult,
}

impl Qep {
    /// Execute `plan` to obtain ground truth and build the QEP.
    pub fn measure(
        db: &Database,
        query: Query,
        plan: PlanNode,
        template: impl Into<String>,
    ) -> Self {
        let truth = Executor::new(db).execute(&plan);
        Self { query, plan, template: template.into(), truth }
    }

    pub fn cardinality(&self) -> f64 {
        self.truth.rows as f64
    }

    pub fn cost(&self) -> f64 {
        self.truth.cost
    }

    pub fn runtime_ms(&self) -> f64 {
        self.truth.time_ms
    }
}

/// A named workload over one database.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Workload {
    pub name: String,
    pub database: String,
    pub plan_source: PlanSource,
    pub qeps: Vec<Qep>,
}

/// Distribution summary of one target value (drives the §6 workload
/// discussion and Fig. 7-style outputs).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Distribution {
    pub min: f64,
    pub p50: f64,
    pub p90: f64,
    pub p99: f64,
    pub max: f64,
    pub mean: f64,
    pub std: f64,
}

impl Distribution {
    pub fn of(mut values: Vec<f64>) -> Self {
        assert!(!values.is_empty(), "distribution of empty sample");
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let pct = |p: f64| values[((values.len() - 1) as f64 * p) as usize];
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64;
        Self {
            min: values[0],
            p50: pct(0.5),
            p90: pct(0.9),
            p99: pct(0.99),
            max: *values.last().expect("non-empty"),
            mean,
            std: var.sqrt(),
        }
    }
}

/// Summary row for Table 1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadSummary {
    pub name: String,
    pub database: String,
    pub plan_source: PlanSource,
    pub num_queries: usize,
    pub num_qeps: usize,
    pub max_joins: usize,
    pub cardinality: Distribution,
    pub cost: Distribution,
    pub runtime_ms: Distribution,
}

impl Workload {
    /// Number of distinct queries (a sampled workload has many QEPs per query).
    pub fn num_queries(&self) -> usize {
        let mut ids: Vec<&str> = self.qeps.iter().map(|q| q.query.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    pub fn num_qeps(&self) -> usize {
        self.qeps.len()
    }

    pub fn summary(&self) -> WorkloadSummary {
        WorkloadSummary {
            name: self.name.clone(),
            database: self.database.clone(),
            plan_source: self.plan_source,
            num_queries: self.num_queries(),
            num_qeps: self.num_qeps(),
            max_joins: self.qeps.iter().map(|q| q.query.num_joins()).max().unwrap_or(0),
            cardinality: Distribution::of(self.qeps.iter().map(Qep::cardinality).collect()),
            cost: Distribution::of(self.qeps.iter().map(Qep::cost).collect()),
            runtime_ms: Distribution::of(self.qeps.iter().map(Qep::runtime_ms).collect()),
        }
    }

    /// Deterministic train/eval split. For sampled workloads the split is at
    /// *query* level (paper §6.3: "we split the available QEPs at query
    /// level, thus we evaluate QPSeeker on queries never seen before").
    pub fn split(&self, train_frac: f64, at_query_level: bool) -> (Vec<&Qep>, Vec<&Qep>) {
        assert!((0.0..=1.0).contains(&train_frac));
        if at_query_level {
            let mut ids: Vec<&str> = self.qeps.iter().map(|q| q.query.id.as_str()).collect();
            ids.sort_unstable();
            ids.dedup();
            let cut = ((ids.len() as f64) * train_frac) as usize;
            // Hash-order the ids so the split is stable but not biased by
            // generation order.
            let mut hashed: Vec<(u64, &str)> =
                ids.into_iter().map(|id| (fnv(id.as_bytes()), id)).collect();
            hashed.sort_unstable();
            let train_ids: std::collections::HashSet<&str> =
                hashed.iter().take(cut).map(|&(_, id)| id).collect();
            self.qeps.iter().partition(|q| train_ids.contains(q.query.id.as_str()))
        } else {
            let cut = ((self.qeps.len() as f64) * train_frac) as usize;
            let mut idx: Vec<(u64, usize)> = (0..self.qeps.len())
                .map(|i| (fnv(format!("{}:{i}", self.qeps[i].query.id).as_bytes()), i))
                .collect();
            idx.sort_unstable();
            let train: std::collections::HashSet<usize> =
                idx.iter().take(cut).map(|&(_, i)| i).collect();
            let mut tr = Vec::new();
            let mut ev = Vec::new();
            for (i, q) in self.qeps.iter().enumerate() {
                if train.contains(&i) {
                    tr.push(q);
                } else {
                    ev.push(q);
                }
            }
            (tr, ev)
        }
    }
}

fn fnv(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h
}

/// Execute many (query, plan, template) triples in parallel to build QEPs.
pub fn measure_parallel(db: &Database, items: Vec<(Query, PlanNode, String)>) -> Vec<Qep> {
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(8);
    if items.len() < 16 || threads <= 1 {
        return items.into_iter().map(|(q, p, t)| Qep::measure(db, q, p, t)).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let chunks: Vec<Vec<(Query, PlanNode, String)>> =
        items.chunks(chunk).map(|c| c.to_vec()).collect();
    let mut out: Vec<Vec<Qep>> = Vec::new();
    crossbeam::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| {
                s.spawn(move |_| {
                    let ex = Executor::new(db);
                    c.into_iter()
                        .map(|(q, p, t)| Qep {
                            truth: ex.execute(&p),
                            query: q,
                            plan: p,
                            template: t,
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            out.push(h.join().expect("worker thread panicked"));
        }
    })
    .expect("crossbeam scope");
    out.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpseeker_engine::optimizer::PgOptimizer;
    use qpseeker_engine::query::{ColRef, JoinPred, RelRef};
    use qpseeker_storage::datagen::imdb;

    fn mk_query(i: usize) -> Query {
        let mut q = Query::new(format!("q{i}"));
        q.relations = vec![RelRef::new("title"), RelRef::new("movie_info")];
        q.joins = vec![JoinPred {
            left: ColRef::new("movie_info", "movie_id"),
            right: ColRef::new("title", "id"),
        }];
        q
    }

    fn tiny_workload(n: usize) -> (Database, Workload) {
        let db = imdb::generate(0.05, 2);
        let opt = PgOptimizer::new(&db);
        let qeps: Vec<Qep> = (0..n)
            .map(|i| {
                let q = mk_query(i);
                let p = opt.plan(&q);
                Qep::measure(&db, q, p, format!("t{}", i % 3))
            })
            .collect();
        let w = Workload {
            name: "tiny".into(),
            database: "imdb".into(),
            plan_source: PlanSource::DbOptimizer,
            qeps,
        };
        (db, w)
    }

    #[test]
    fn qep_measurement_fills_truth() {
        let (_, w) = tiny_workload(2);
        let q = &w.qeps[0];
        assert!(q.cardinality() > 0.0);
        assert!(q.cost() > 0.0);
        assert!(q.runtime_ms() > 0.0);
        assert_eq!(q.truth.nodes.len(), q.plan.len());
    }

    #[test]
    fn summary_counts() {
        let (_, w) = tiny_workload(6);
        let s = w.summary();
        assert_eq!(s.num_qeps, 6);
        assert_eq!(s.num_queries, 6);
        assert_eq!(s.max_joins, 1);
        assert!(s.runtime_ms.p50 > 0.0);
        assert!(s.runtime_ms.max >= s.runtime_ms.p50);
    }

    #[test]
    fn distribution_percentiles_ordered() {
        let d = Distribution::of((1..=100).map(|x| x as f64).collect());
        assert_eq!(d.min, 1.0);
        assert_eq!(d.max, 100.0);
        assert!(d.p50 <= d.p90 && d.p90 <= d.p99);
        assert!((d.mean - 50.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_distribution_panics() {
        Distribution::of(vec![]);
    }

    #[test]
    fn split_fractions_roughly_respected() {
        let (_, w) = tiny_workload(10);
        let (tr, ev) = w.split(0.8, false);
        assert_eq!(tr.len() + ev.len(), 10);
        assert!(tr.len() >= 7 && tr.len() <= 9, "train {}", tr.len());
    }

    #[test]
    fn query_level_split_keeps_queries_whole() {
        // Same query id on several QEPs must land entirely in one side.
        let db = imdb::generate(0.05, 2);
        let opt = PgOptimizer::new(&db);
        let mut qeps = Vec::new();
        for i in 0..6 {
            for _rep in 0..3 {
                let q = mk_query(i);
                let p = opt.plan(&q);
                qeps.push(Qep::measure(&db, q, p, "t"));
            }
        }
        let w = Workload {
            name: "s".into(),
            database: "imdb".into(),
            plan_source: PlanSource::Sampling,
            qeps,
        };
        let (tr, ev) = w.split(0.5, true);
        let train_ids: std::collections::HashSet<&str> =
            tr.iter().map(|q| q.query.id.as_str()).collect();
        for q in &ev {
            assert!(!train_ids.contains(q.query.id.as_str()), "query leaked across split");
        }
    }

    #[test]
    fn split_is_deterministic() {
        let (_, w) = tiny_workload(10);
        let (a, _) = w.split(0.8, false);
        let (b, _) = w.split(0.8, false);
        let ids_a: Vec<&str> = a.iter().map(|q| q.query.id.as_str()).collect();
        let ids_b: Vec<&str> = b.iter().map(|q| q.query.id.as_str()).collect();
        assert_eq!(ids_a, ids_b);
    }

    #[test]
    fn parallel_measurement_matches_serial() {
        let db = imdb::generate(0.05, 2);
        let opt = PgOptimizer::new(&db);
        let items: Vec<(Query, PlanNode, String)> = (0..20)
            .map(|i| {
                let q = mk_query(i);
                let p = opt.plan(&q);
                (q, p, "t".to_string())
            })
            .collect();
        let serial: Vec<Qep> =
            items.iter().cloned().map(|(q, p, t)| Qep::measure(&db, q, p, t)).collect();
        let parallel = measure_parallel(&db, items);
        assert_eq!(serial.len(), parallel.len());
        // Parallel order may differ per chunking; compare multisets of times.
        let mut a: Vec<u64> = serial.iter().map(|q| q.truth.rows).collect();
        let mut b: Vec<u64> = parallel.iter().map(|q| q.truth.rows).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }
}
