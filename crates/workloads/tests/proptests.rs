//! Property tests for workload generation and plan-space sampling.

use proptest::prelude::*;
use qpseeker_storage::datagen::imdb;
use qpseeker_workloads::{
    enumerate_orderings, sample_plans, synthetic, SamplingConfig, SyntheticConfig,
};
use std::sync::OnceLock;

fn db() -> &'static qpseeker_storage::Database {
    static DB: OnceLock<qpseeker_storage::Database> = OnceLock::new();
    DB.get_or_init(|| imdb::generate(0.04, 99))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every generated synthetic query validates against the schema, is
    /// connected, and respects the 0-2 join budget — for any seed.
    #[test]
    fn synthetic_queries_always_valid(seed in 0u64..5_000, n in 5usize..40) {
        let qs = synthetic::generate_queries(db(), &SyntheticConfig { n_queries: n, seed });
        prop_assert_eq!(qs.len(), n);
        for (q, template) in &qs {
            prop_assert!(q.validate(db()).is_ok(), "{} invalid", q.id);
            prop_assert!(q.is_connected());
            prop_assert!(q.num_joins() <= 2);
            prop_assert!(template.starts_with("synth-"));
        }
    }

    /// Every ordering enumerated for any synthetic query keeps all prefixes
    /// connected and covers every relation exactly once.
    #[test]
    fn orderings_are_connected_permutations(seed in 0u64..5_000) {
        let qs = synthetic::generate_queries(db(), &SyntheticConfig { n_queries: 8, seed });
        for (q, _) in &qs {
            for ordering in enumerate_orderings(q, 50) {
                prop_assert_eq!(ordering.len(), q.num_relations());
                let mut sorted = ordering.clone();
                sorted.sort();
                sorted.dedup();
                prop_assert_eq!(sorted.len(), ordering.len(), "duplicate alias in ordering");
                let mut joined = std::collections::BTreeSet::new();
                joined.insert(ordering[0].clone());
                for a in &ordering[1..] {
                    prop_assert!(
                        !q.joins_between(&joined, a).is_empty(),
                        "disconnected prefix"
                    );
                    joined.insert(a.clone());
                }
            }
        }
    }

    /// Sampled plans are always valid, deduplicated, and rank-sorted by the
    /// paper's user cost model for any seed/keep fraction.
    #[test]
    fn sampled_plans_invariants(seed in 0u64..2_000, keep in 0.05f64..1.0) {
        let qs = synthetic::generate_queries(db(), &SyntheticConfig { n_queries: 4, seed });
        for (q, _) in qs.iter().filter(|(q, _)| q.num_joins() >= 1) {
            let cfg = SamplingConfig { keep_fraction: keep, seed, ..Default::default() };
            let plans = sample_plans(db(), q, &cfg);
            prop_assert!(!plans.is_empty());
            for w in plans.windows(2) {
                prop_assert!(w[0].paper_cost <= w[1].paper_cost);
                prop_assert!(w[0].plan != w[1].plan || w[0].paper_cost != w[1].paper_cost);
            }
            for p in &plans {
                prop_assert!(p.plan.validate(q).is_ok());
                prop_assert!(p.plan.is_left_deep());
            }
        }
    }

    /// Workload splits partition the QEPs exactly, for any fraction.
    #[test]
    fn split_partitions_exactly(frac in 0.1f64..0.9, seed in 0u64..500) {
        let w = synthetic::generate(db(), &SyntheticConfig { n_queries: 20, seed });
        let (train, eval) = w.split(frac, false);
        prop_assert_eq!(train.len() + eval.len(), w.num_qeps());
        // No overlap: pointer identity check via indices of equal ids+plan.
        let train_ids: std::collections::HashSet<(String, usize)> = train
            .iter()
            .map(|q| (q.query.id.clone(), q.plan.len()))
            .collect();
        let _ = train_ids; // ids may repeat across plans; partition count is the invariant
    }
}
