//! Database catalog: schema metadata, foreign keys, indexes and the bundled
//! [`Database`] handle that the engine, workload generators and QPSeeker's
//! encoders all share.

use crate::stats::TableStats;
use crate::table::{DataType, Table};
use serde::{Deserialize, Serialize};

/// Column metadata.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ColumnMeta {
    pub name: String,
    pub dtype: DataType,
}

/// Table metadata.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableMeta {
    pub name: String,
    pub columns: Vec<ColumnMeta>,
}

/// A foreign-key edge `from_table.from_col -> to_table.to_col`. These edges
/// define the set of "all possible joins" that the paper one-hot encodes
/// (the `M`-sized join vocabulary of the query encoder).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForeignKey {
    pub from_table: String,
    pub from_col: String,
    pub to_table: String,
    pub to_col: String,
}

/// B-tree index metadata. Heights and leaf-page counts feed both the
/// PG-style cost model and the paper's user-defined cost model (§5.1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IndexMeta {
    pub table: String,
    pub column: String,
    pub height: usize,
    pub leaf_pages: usize,
    pub unique: bool,
}

impl IndexMeta {
    /// Derive B-tree shape parameters from the row count. Fanout ≈ 256 keys
    /// per internal page, ≈ 360 entries per leaf (PostgreSQL-ish for 8 KiB
    /// pages and 8-byte keys).
    pub fn for_column(table: &str, column: &str, n_rows: usize, unique: bool) -> Self {
        let leaf_pages = (n_rows / 360).max(1);
        let mut height = 1usize;
        let mut pages = leaf_pages;
        while pages > 1 {
            pages = pages.div_ceil(256);
            height += 1;
        }
        Self { table: table.into(), column: column.into(), height, leaf_pages, unique }
    }
}

/// Full schema catalog.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Catalog {
    pub tables: Vec<TableMeta>,
    pub foreign_keys: Vec<ForeignKey>,
    pub indexes: Vec<IndexMeta>,
}

impl Catalog {
    /// Number of relations (the `N` of the paper's one-hot relation encoding).
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Number of possible joins (the `M` of the one-hot join encoding).
    pub fn num_joins(&self) -> usize {
        self.foreign_keys.len()
    }

    pub fn table_idx(&self, name: &str) -> Option<usize> {
        self.tables.iter().position(|t| t.name == name)
    }

    pub fn table_meta(&self, name: &str) -> Option<&TableMeta> {
        self.tables.iter().find(|t| t.name == name)
    }

    /// Index of the FK edge joining these two table.column pairs, in either
    /// direction. This is the join's one-hot id.
    pub fn join_idx(&self, t1: &str, c1: &str, t2: &str, c2: &str) -> Option<usize> {
        self.foreign_keys.iter().position(|fk| {
            (fk.from_table == t1 && fk.from_col == c1 && fk.to_table == t2 && fk.to_col == c2)
                || (fk.from_table == t2
                    && fk.from_col == c2
                    && fk.to_table == t1
                    && fk.to_col == c1)
        })
    }

    /// All FK edges incident to `table`.
    pub fn joins_of(&self, table: &str) -> Vec<&ForeignKey> {
        self.foreign_keys
            .iter()
            .filter(|fk| fk.from_table == table || fk.to_table == table)
            .collect()
    }

    pub fn index_on(&self, table: &str, column: &str) -> Option<&IndexMeta> {
        self.indexes.iter().find(|i| i.table == table && i.column == column)
    }
}

/// A fully materialized database: catalog + data + statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Database {
    pub name: String,
    pub catalog: Catalog,
    pub tables: Vec<Table>,
    pub stats: Vec<TableStats>,
}

impl Database {
    /// Bundle tables into a database and run ANALYZE on every table.
    pub fn new(name: impl Into<String>, catalog: Catalog, tables: Vec<Table>) -> Self {
        let stats = tables.iter().map(TableStats::analyze).collect();
        let db = Self { name: name.into(), catalog, tables, stats };
        db.validate();
        db
    }

    fn validate(&self) {
        for meta in &self.catalog.tables {
            let t = self
                .table(&meta.name)
                .unwrap_or_else(|| panic!("catalog table {} has no data", meta.name));
            for cm in &meta.columns {
                assert!(
                    t.col_idx(&cm.name).is_some(),
                    "catalog column {}.{} missing from data",
                    meta.name,
                    cm.name
                );
            }
        }
        for fk in &self.catalog.foreign_keys {
            assert!(
                self.table(&fk.from_table).is_some(),
                "FK from unknown table {}",
                fk.from_table
            );
            assert!(self.table(&fk.to_table).is_some(), "FK to unknown table {}", fk.to_table);
        }
    }

    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.iter().find(|t| t.name == name)
    }

    /// Like [`Database::table`], but with a typed error for the library
    /// path (no panic, no stringly-typed failure).
    pub fn try_table(&self, name: &str) -> Result<&Table, crate::error::StorageError> {
        self.table(name).ok_or_else(|| crate::error::StorageError::UnknownTable(name.to_string()))
    }

    pub fn table_stats(&self, name: &str) -> Option<&TableStats> {
        self.stats.iter().find(|s| s.table == name)
    }

    /// Like [`Database::table_stats`], but with a typed error.
    pub fn try_table_stats(&self, name: &str) -> Result<&TableStats, crate::error::StorageError> {
        self.table_stats(name)
            .ok_or_else(|| crate::error::StorageError::MissingStats(name.to_string()))
    }

    /// Total number of rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(|t| t.n_rows()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{Column, ColumnData};

    fn tiny_db() -> Database {
        let a = Table::new(
            "a",
            vec![
                Column { name: "id".into(), data: ColumnData::Int(vec![0, 1, 2]) },
                Column { name: "v".into(), data: ColumnData::Int(vec![10, 20, 30]) },
            ],
        );
        let b = Table::new(
            "b",
            vec![
                Column { name: "id".into(), data: ColumnData::Int(vec![0, 1]) },
                Column { name: "a_id".into(), data: ColumnData::Int(vec![2, 0]) },
            ],
        );
        let catalog = Catalog {
            tables: vec![
                TableMeta {
                    name: "a".into(),
                    columns: vec![
                        ColumnMeta { name: "id".into(), dtype: DataType::Int },
                        ColumnMeta { name: "v".into(), dtype: DataType::Int },
                    ],
                },
                TableMeta {
                    name: "b".into(),
                    columns: vec![
                        ColumnMeta { name: "id".into(), dtype: DataType::Int },
                        ColumnMeta { name: "a_id".into(), dtype: DataType::Int },
                    ],
                },
            ],
            foreign_keys: vec![ForeignKey {
                from_table: "b".into(),
                from_col: "a_id".into(),
                to_table: "a".into(),
                to_col: "id".into(),
            }],
            indexes: vec![IndexMeta::for_column("a", "id", 3, true)],
        };
        Database::new("tiny", catalog, vec![a, b])
    }

    #[test]
    fn database_bundles_stats() {
        let db = tiny_db();
        assert_eq!(db.total_rows(), 5);
        assert_eq!(db.table_stats("a").unwrap().n_rows, 3);
        assert!(db.table_stats("missing").is_none());
    }

    #[test]
    fn join_lookup_is_direction_agnostic() {
        let db = tiny_db();
        assert_eq!(db.catalog.join_idx("b", "a_id", "a", "id"), Some(0));
        assert_eq!(db.catalog.join_idx("a", "id", "b", "a_id"), Some(0));
        assert_eq!(db.catalog.join_idx("a", "v", "b", "a_id"), None);
    }

    #[test]
    fn joins_of_returns_incident_edges() {
        let db = tiny_db();
        assert_eq!(db.catalog.joins_of("a").len(), 1);
        assert_eq!(db.catalog.joins_of("b").len(), 1);
    }

    #[test]
    fn index_shape_grows_with_rows() {
        let small = IndexMeta::for_column("t", "c", 100, true);
        let large = IndexMeta::for_column("t", "c", 10_000_000, true);
        assert_eq!(small.height, 1);
        assert!(large.height >= 2);
        assert!(large.leaf_pages > small.leaf_pages);
    }

    #[test]
    #[should_panic(expected = "missing from data")]
    fn validation_catches_schema_mismatch() {
        let t = Table::new("a", vec![Column { name: "id".into(), data: ColumnData::Int(vec![]) }]);
        let catalog = Catalog {
            tables: vec![TableMeta {
                name: "a".into(),
                columns: vec![ColumnMeta { name: "missing".into(), dtype: DataType::Int }],
            }],
            foreign_keys: vec![],
            indexes: vec![],
        };
        Database::new("bad", catalog, vec![t]);
    }
}
