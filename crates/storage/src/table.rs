//! In-memory column-store tables.
//!
//! Tables are append-only columnar vectors. Text columns are
//! dictionary-encoded (`u32` codes into a per-column dictionary) so that the
//! executor can join and filter on fixed-width integers, and so the TaBERT
//! substitute can cheaply read back cell values.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Logical column datatypes (the paper's TaBERT triplets carry a datatype tag).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    Int,
    Float,
    Text,
}

/// A single cell value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Int(i64),
    Float(f64),
    Text(String),
}

impl Value {
    /// Numeric projection used by histograms and comparison predicates.
    /// Text values project to their dictionary code at read time, so this is
    /// only meaningful for `Int`/`Float` here.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            Value::Text(_) => None,
        }
    }
}

/// Column payload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ColumnData {
    Int(Vec<i64>),
    Float(Vec<f64>),
    /// Dictionary-encoded text: `codes[i]` indexes into `dict`.
    Text {
        codes: Vec<u32>,
        dict: Vec<String>,
    },
}

impl ColumnData {
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Text { codes, .. } => codes.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn dtype(&self) -> DataType {
        match self {
            ColumnData::Int(_) => DataType::Int,
            ColumnData::Float(_) => DataType::Float,
            ColumnData::Text { .. } => DataType::Text,
        }
    }

    /// Numeric projection of row `i` (text projects to its dictionary code,
    /// which is what the executor compares on).
    #[inline]
    pub fn num(&self, i: usize) -> f64 {
        match self {
            ColumnData::Int(v) => v[i] as f64,
            ColumnData::Float(v) => v[i],
            ColumnData::Text { codes, .. } => codes[i] as f64,
        }
    }

    /// Integer key projection of row `i` (floats are truncated; joins in the
    /// benchmarks are only ever over integer keys or dictionary codes).
    #[inline]
    pub fn key(&self, i: usize) -> i64 {
        match self {
            ColumnData::Int(v) => v[i],
            ColumnData::Float(v) => v[i] as i64,
            ColumnData::Text { codes, .. } => codes[i] as i64,
        }
    }

    /// Materialize row `i` as a [`Value`].
    pub fn value(&self, i: usize) -> Value {
        match self {
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Float(v) => Value::Float(v[i]),
            ColumnData::Text { codes, dict } => Value::Text(dict[codes[i] as usize].clone()),
        }
    }
}

/// Named column.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Column {
    pub name: String,
    pub data: ColumnData,
}

/// Helper to build dictionary-encoded text columns.
#[derive(Debug, Default)]
pub struct TextBuilder {
    codes: Vec<u32>,
    dict: Vec<String>,
    lookup: HashMap<String, u32>,
}

impl TextBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, s: &str) {
        let code = match self.lookup.get(s) {
            Some(&c) => c,
            None => {
                let c = self.dict.len() as u32;
                self.dict.push(s.to_string());
                self.lookup.insert(s.to_string(), c);
                c
            }
        };
        self.codes.push(code);
    }

    pub fn finish(self) -> ColumnData {
        ColumnData::Text { codes: self.codes, dict: self.dict }
    }
}

/// An in-memory table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    pub name: String,
    pub columns: Vec<Column>,
}

impl Table {
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> Self {
        let t = Self { name: name.into(), columns };
        let n = t.n_rows();
        for c in &t.columns {
            assert_eq!(c.data.len(), n, "column {} has inconsistent length", c.name);
        }
        t
    }

    pub fn n_rows(&self) -> usize {
        self.columns.first().map(|c| c.data.len()).unwrap_or(0)
    }

    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// Find a column index by name.
    pub fn col_idx(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Borrow a column by name.
    ///
    /// # Panics
    /// Panics if the column is missing (schema bugs should fail loudly).
    pub fn col(&self, name: &str) -> &Column {
        self.columns
            .iter()
            .find(|c| c.name == name)
            .unwrap_or_else(|| panic!("table {} has no column {name}", self.name))
    }

    /// Estimated on-disk width of one row in bytes (8 per numeric column,
    /// average string length for text). Drives the block-count statistics.
    pub fn row_width(&self) -> usize {
        self.columns
            .iter()
            .map(|c| match &c.data {
                ColumnData::Int(_) | ColumnData::Float(_) => 8,
                ColumnData::Text { codes, dict } => {
                    if codes.is_empty() {
                        8
                    } else {
                        let total: usize = codes.iter().map(|&c| dict[c as usize].len()).sum();
                        (total / codes.len()).max(1) + 4
                    }
                }
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        let mut tb = TextBuilder::new();
        for s in ["ab", "cd", "ab"] {
            tb.push(s);
        }
        Table::new(
            "t",
            vec![
                Column { name: "id".into(), data: ColumnData::Int(vec![1, 2, 3]) },
                Column { name: "score".into(), data: ColumnData::Float(vec![0.5, 1.5, 2.5]) },
                Column { name: "tag".into(), data: tb.finish() },
            ],
        )
    }

    #[test]
    fn dimensions() {
        let t = sample_table();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.n_cols(), 3);
    }

    #[test]
    fn column_lookup() {
        let t = sample_table();
        assert_eq!(t.col_idx("score"), Some(1));
        assert_eq!(t.col_idx("missing"), None);
        assert_eq!(t.col("id").data.dtype(), DataType::Int);
    }

    #[test]
    #[should_panic(expected = "no column")]
    fn missing_column_panics() {
        sample_table().col("nope");
    }

    #[test]
    fn dictionary_encoding_dedups() {
        let t = sample_table();
        match &t.col("tag").data {
            ColumnData::Text { codes, dict } => {
                assert_eq!(dict.len(), 2);
                assert_eq!(codes, &[0, 1, 0]);
            }
            _ => panic!("expected text column"),
        }
    }

    #[test]
    fn numeric_projection() {
        let t = sample_table();
        assert_eq!(t.col("id").data.num(2), 3.0);
        assert_eq!(t.col("score").data.num(1), 1.5);
        assert_eq!(t.col("tag").data.num(2), 0.0); // dict code of "ab"
        assert_eq!(t.col("tag").data.key(1), 1);
    }

    #[test]
    fn value_materialization() {
        let t = sample_table();
        assert_eq!(t.col("tag").data.value(1), Value::Text("cd".into()));
        assert_eq!(t.col("id").data.value(0), Value::Int(1));
        assert_eq!(Value::Int(7).as_f64(), Some(7.0));
        assert_eq!(Value::Text("x".into()).as_f64(), None);
    }

    #[test]
    #[should_panic(expected = "inconsistent length")]
    fn ragged_columns_rejected() {
        Table::new(
            "bad",
            vec![
                Column { name: "a".into(), data: ColumnData::Int(vec![1]) },
                Column { name: "b".into(), data: ColumnData::Int(vec![1, 2]) },
            ],
        );
    }

    #[test]
    fn row_width_reasonable() {
        let t = sample_table();
        // 8 (int) + 8 (float) + ~2+4 (avg text + code)
        assert!(t.row_width() >= 18 && t.row_width() <= 24, "width {}", t.row_width());
    }
}
