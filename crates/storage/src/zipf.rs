//! Zipf-distributed sampling (implemented in-repo to keep the dependency
//! surface to `rand` core).
//!
//! Real IMDb/Stack attributes are heavily skewed; the synthetic generators
//! use Zipf draws for foreign keys and categorical attributes so that join
//! fan-outs and filter selectivities have realistic long tails.

use rand::Rng;

/// A Zipf(n, s) sampler over `{0, 1, ..., n-1}` via a precomputed CDF and
/// binary search. Rank 0 is the most frequent value.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// # Panics
    /// Panics when `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs a non-empty support");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf }
    }

    pub fn support(&self) -> usize {
        self.cdf.len()
    }

    /// Draw a rank in `[0, n)`.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).expect("finite cdf")) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// The probability mass of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_s_zero() {
        let z = Zipf::new(4, 0.0);
        for k in 0..4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn skew_increases_with_s() {
        let z1 = Zipf::new(100, 0.5);
        let z2 = Zipf::new(100, 1.5);
        assert!(z2.pmf(0) > z1.pmf(0));
        assert!(z2.pmf(99) < z1.pmf(99));
    }

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(50, 1.1);
        let total: f64 = (0..50).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn samples_in_range_and_skewed() {
        let z = Zipf::new(10, 1.2);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        for _ in 0..20_000 {
            let k = z.sample(&mut rng);
            assert!(k < 10);
            counts[k] += 1;
        }
        assert!(counts[0] > counts[5]);
        assert!(counts[0] > counts[9]);
        // Empirical head frequency matches pmf within 15%.
        let emp = counts[0] as f64 / 20_000.0;
        assert!((emp - z.pmf(0)).abs() / z.pmf(0) < 0.15);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_support_rejected() {
        Zipf::new(0, 1.0);
    }
}
