//! `qpseeker-storage` — the column-store database substrate.
//!
//! The paper runs against PostgreSQL instances loaded with the IMDb and
//! StackExchange datasets. This crate provides the storage half of that
//! substrate:
//!
//! * [`table`] — in-memory columnar tables with dictionary-encoded text,
//! * [`catalog`] — schema metadata, foreign-key join graph, B-tree index
//!   shapes, bundled into a [`catalog::Database`],
//! * [`stats`] — ANALYZE-style statistics (equi-depth histograms, MCVs,
//!   distinct counts) that drive the PG-style estimator in `qpseeker-engine`,
//! * [`datagen`] — seeded synthetic generators for IMDb-shaped,
//!   Stack-shaped and random (Zero-Shot pretraining) databases,
//! * [`zipf`] — skewed sampling used throughout generation.
//!
//! # Example
//!
//! ```
//! let db = qpseeker_storage::datagen::imdb::generate(0.05, 42);
//! assert_eq!(db.catalog.num_tables(), 16);
//! let title = db.table("title").unwrap();
//! assert!(title.n_rows() > 50);
//! let stats = db.table_stats("title").unwrap();
//! assert!(stats.col("production_year").unwrap().n_distinct > 10);
//! ```

pub mod catalog;
pub mod datagen;
pub mod error;
pub mod fault;
pub mod stats;
pub mod table;
pub mod zipf;

pub use catalog::{Catalog, ColumnMeta, Database, ForeignKey, IndexMeta, TableMeta};
pub use error::StorageError;
pub use fault::{DurableFault, FaultConfig, FaultInjector, InferenceFault};
pub use stats::{ColumnStats, Histogram, TableStats, BLOCK_SIZE};
pub use table::{Column, ColumnData, DataType, Table, TextBuilder, Value};
