//! Deterministic fault injection.
//!
//! A [`FaultConfig`] describes *which* faults to inject and at what rate; a
//! [`FaultInjector`] decides *where* they fire. Decisions are pure functions
//! of `(seed, site, key)` — hashed, not drawn from a stateful RNG — so the
//! same seed produces the same fault schedule regardless of execution order,
//! which keeps chaos tests reproducible and lets a retry of a *different*
//! attempt see a different outcome while a re-run of the same attempt sees
//! the same one.
//!
//! Fault classes (all off by default):
//! * **page-read failures** — a scan's page fetch errors (transient),
//! * **latency spikes** — extra virtual milliseconds charged to an operator,
//! * **corrupted statistics** — a table's ANALYZE stats are served with NaN
//!   histogram bounds and zeroed distinct counts (permanent),
//! * **row-budget aborts** — execution exceeds an admission-control row cap,
//! * **inference faults** — the serving layer's model produces a non-finite
//!   prediction or stalls past its deadline (exercises graceful degradation),
//! * **durable-path faults** — a durable write is torn (partial bytes reach
//!   the destination, as on a non-atomic filesystem) or the process "dies"
//!   at a crash point mid-protocol (exercises snapshot recovery).
//!
//! Durable-path decisions additionally consume a shared write sequence
//! counter (clones of one injector share it), so "crash at the k-th durable
//! write" is expressible — that is what the kill-at-every-epoch crash-
//! recovery sweep arms.

use crate::error::StorageError;
use crate::stats::TableStats;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Fault-injection configuration. `Default` injects nothing.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Seed for the deterministic fault schedule.
    pub seed: u64,
    /// Probability a scan's page read fails (transient).
    pub page_read_p: f64,
    /// Probability an operator is charged a latency spike.
    pub latency_spike_p: f64,
    /// Size of one latency spike, in virtual milliseconds.
    pub latency_spike_ms: f64,
    /// Probability a table's statistics are served corrupted.
    pub corrupt_stats_p: f64,
    /// Abort execution once this many rows have been processed.
    pub row_budget: Option<u64>,
    /// Probability one neural-inference attempt yields a NaN prediction.
    pub inference_nan_p: f64,
    /// Probability one neural-inference attempt stalls past its deadline.
    pub inference_stall_p: f64,
    /// Probability one neural-inference attempt panics mid-plan (the
    /// serving layer must contain it and fall back).
    pub inference_panic_p: f64,
    /// Probability a durable write is torn: a truncated prefix reaches the
    /// destination (simulating a crash mid-write on a filesystem without
    /// atomic rename) and the writing process "dies".
    pub torn_write_p: f64,
    /// Simulated process kill: durable write number `n` (0-based, counted
    /// across all clones of the injector) crashes before any bytes reach
    /// disk, as does every write after it.
    pub crash_after_writes: Option<u64>,
    /// Probability one online fine-tune round produces a candidate with
    /// non-finite parameters (a poisoned gradient step slipping past the
    /// per-batch guards). The promotion gate must reject such a candidate.
    pub finetune_poison_p: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            page_read_p: 0.0,
            latency_spike_p: 0.0,
            latency_spike_ms: 0.0,
            corrupt_stats_p: 0.0,
            row_budget: None,
            inference_nan_p: 0.0,
            inference_stall_p: 0.0,
            inference_panic_p: 0.0,
            torn_write_p: 0.0,
            crash_after_writes: None,
            finetune_poison_p: 0.0,
        }
    }
}

impl FaultConfig {
    /// Every fault class armed at probability `p` (the chaos-suite preset).
    pub fn chaos(seed: u64, p: f64) -> Self {
        Self {
            seed,
            page_read_p: p,
            latency_spike_p: p,
            latency_spike_ms: 50.0,
            corrupt_stats_p: p,
            row_budget: None,
            inference_nan_p: p,
            inference_stall_p: p,
            inference_panic_p: p,
            torn_write_p: p,
            crash_after_writes: None,
            finetune_poison_p: p,
        }
    }
}

/// Simulated model-inference faults, decided per `(query, attempt)` so a
/// retry of the same query can succeed where the first attempt failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InferenceFault {
    /// The cost model returned NaN/Inf.
    NanPrediction,
    /// The planner blew through its deadline.
    Stall,
    /// The planner panics mid-attempt; the serving layer's per-attempt
    /// panic boundary must contain it.
    Panic,
}

/// Simulated faults on the durable (snapshot/checkpoint) write path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DurableFault {
    /// Only the first `keep_bytes` of the payload reach the destination
    /// before the process "dies" (non-atomic torn write).
    TornWrite { keep_bytes: usize },
    /// The process "dies" at the crash point, before any bytes are written.
    CrashPoint,
}

/// Decider for an armed [`FaultConfig`]. Stateless except for the durable
/// write sequence counter, which clones share so a crash point fires at the
/// same global write regardless of which clone performs it.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    cfg: FaultConfig,
    durable_writes: Arc<AtomicU64>,
}

impl FaultInjector {
    pub fn new(cfg: FaultConfig) -> Self {
        Self { cfg, durable_writes: Arc::new(AtomicU64::new(0)) }
    }

    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Deterministic Bernoulli trial for `(site, key)` at probability `p`.
    fn trips(&self, site: &str, key: &str, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        let h = fault_hash(self.cfg.seed, site, key);
        // 53 mantissa bits -> uniform in [0, 1).
        let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Simulate the page reads backing a scan of `table`. Fails with a
    /// transient [`StorageError::PageRead`] per the configured rate.
    pub fn page_read(&self, table: &str) -> Result<(), StorageError> {
        if self.trips("page_read", table, self.cfg.page_read_p) {
            let page = fault_hash(self.cfg.seed, "page_no", table) % 1024;
            return Err(StorageError::PageRead { table: table.to_string(), page });
        }
        Ok(())
    }

    /// Extra virtual milliseconds charged to the operator identified by
    /// `key` (zero when no spike fires).
    pub fn latency_spike_ms(&self, key: &str) -> f64 {
        if self.trips("latency", key, self.cfg.latency_spike_p) {
            self.cfg.latency_spike_ms
        } else {
            0.0
        }
    }

    /// Whether `table`'s statistics should be served corrupted.
    pub fn corrupts_stats(&self, table: &str) -> bool {
        self.trips("stats", table, self.cfg.corrupt_stats_p)
    }

    /// A corrupted clone of `stats`: NaN histogram bounds and zeroed
    /// distinct counts, as a bit-rotted ANALYZE snapshot would present.
    pub fn corrupted_stats(&self, stats: &TableStats) -> TableStats {
        let mut out = stats.clone();
        for col in &mut out.columns {
            for b in &mut col.histogram.bounds {
                *b = f64::NAN;
            }
            col.n_distinct = 0;
            col.mcvs.clear();
        }
        out
    }

    /// The configured row budget, if any.
    pub fn row_budget(&self) -> Option<u64> {
        self.cfg.row_budget
    }

    /// Fault decision for one durable write of `len` payload bytes at
    /// `site`. Consumes one tick of the shared write sequence; the decision
    /// is a pure function of `(seed, site, sequence)`, so a schedule replays
    /// identically when the same writes happen in the same order.
    pub fn durable_fault(&self, site: &str, len: usize) -> Option<DurableFault> {
        let seq = self.durable_writes.fetch_add(1, Ordering::Relaxed);
        if let Some(n) = self.cfg.crash_after_writes {
            if seq >= n {
                return Some(DurableFault::CrashPoint);
            }
        }
        let key = format!("{site}#{seq}");
        if len > 0 && self.trips("torn_write", &key, self.cfg.torn_write_p) {
            // Deterministic truncation point, strictly shorter than the
            // payload so the write is genuinely torn.
            let keep = (fault_hash(self.cfg.seed, "torn_len", &key) as usize) % len;
            return Some(DurableFault::TornWrite { keep_bytes: keep });
        }
        None
    }

    /// Durable writes attempted so far (shared across clones).
    pub fn durable_writes(&self) -> u64 {
        self.durable_writes.load(Ordering::Relaxed)
    }

    /// Whether fine-tune round `round` produces a NaN-poisoned candidate
    /// (decided per round so a later round can succeed where one failed).
    pub fn finetune_poisoned(&self, round: u64) -> bool {
        self.trips("finetune_poison", &round.to_string(), self.cfg.finetune_poison_p)
    }

    /// Fault decision for one neural-inference attempt.
    pub fn inference_fault(&self, query_id: &str, attempt: usize) -> Option<InferenceFault> {
        let key = format!("{query_id}#{attempt}");
        if self.trips("infer_nan", &key, self.cfg.inference_nan_p) {
            Some(InferenceFault::NanPrediction)
        } else if self.trips("infer_stall", &key, self.cfg.inference_stall_p) {
            Some(InferenceFault::Stall)
        } else if self.trips("infer_panic", &key, self.cfg.inference_panic_p) {
            Some(InferenceFault::Panic)
        } else {
            None
        }
    }
}

/// FNV-1a over `(seed, site, key)` with separators so distinct sites never
/// alias, finished with a splitmix64-style avalanche. The finalizer matters:
/// raw FNV barely moves the high bits when only a trailing byte changes
/// (e.g. the attempt index), and the high bits are what [`FaultInjector`]
/// turns into the uniform draw.
fn fault_hash(seed: u64, site: &str, key: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    {
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h = (h ^ b as u64).wrapping_mul(0x100000001b3);
            }
            h = (h ^ 0xff).wrapping_mul(0x100000001b3);
        };
        eat(&seed.to_le_bytes());
        eat(site.as_bytes());
        eat(key.as_bytes());
    }
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58476d1ce4e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d049bb133111eb);
    h ^ (h >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_injects_nothing() {
        let fi = FaultInjector::new(FaultConfig::default());
        for t in ["title", "cast_info", "movie_info"] {
            assert!(fi.page_read(t).is_ok());
            assert_eq!(fi.latency_spike_ms(t), 0.0);
            assert!(!fi.corrupts_stats(t));
            assert!(fi.inference_fault(t, 0).is_none());
        }
        assert!(fi.row_budget().is_none());
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let a = FaultInjector::new(FaultConfig::chaos(9, 0.5));
        let b = FaultInjector::new(FaultConfig::chaos(9, 0.5));
        for i in 0..100 {
            let key = format!("t{i}");
            assert_eq!(a.page_read(&key).is_err(), b.page_read(&key).is_err());
            assert_eq!(a.latency_spike_ms(&key), b.latency_spike_ms(&key));
            assert_eq!(a.corrupts_stats(&key), b.corrupts_stats(&key));
            assert_eq!(a.inference_fault(&key, i), b.inference_fault(&key, i));
        }
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a = FaultInjector::new(FaultConfig::chaos(1, 0.5));
        let b = FaultInjector::new(FaultConfig::chaos(2, 0.5));
        let diverges = (0..100).any(|i| {
            let key = format!("t{i}");
            a.page_read(&key).is_err() != b.page_read(&key).is_err()
        });
        assert!(diverges, "seeds 1 and 2 produced identical page-read schedules");
    }

    #[test]
    fn trip_rate_tracks_probability() {
        let fi = FaultInjector::new(FaultConfig::chaos(3, 0.1));
        let n = 10_000;
        let hits = (0..n).filter(|i| fi.page_read(&format!("t{i}")).is_err()).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.02, "p=0.1 schedule fired at rate {rate}");
    }

    #[test]
    fn corrupted_stats_fail_validation() {
        use crate::table::{Column, ColumnData, Table};
        let t = Table::new(
            "t",
            vec![Column { name: "x".into(), data: ColumnData::Int(vec![1, 2, 3]) }],
        );
        let stats = TableStats::analyze(&t);
        assert!(stats.validate().is_ok());
        let fi = FaultInjector::new(FaultConfig::chaos(1, 1.0));
        let bad = fi.corrupted_stats(&stats);
        let err = bad.validate().unwrap_err();
        assert!(matches!(err, StorageError::CorruptStats { .. }), "{err}");
    }

    #[test]
    fn durable_faults_default_off() {
        let fi = FaultInjector::new(FaultConfig::default());
        for _ in 0..50 {
            assert!(fi.durable_fault("snap", 1024).is_none());
        }
        assert_eq!(fi.durable_writes(), 50);
    }

    #[test]
    fn crash_point_fires_at_the_configured_write_and_after() {
        let cfg = FaultConfig { crash_after_writes: Some(3), ..FaultConfig::default() };
        let fi = FaultInjector::new(cfg);
        assert!(fi.durable_fault("snap", 10).is_none()); // write 0
        assert!(fi.durable_fault("snap", 10).is_none()); // write 1
        assert!(fi.durable_fault("snap", 10).is_none()); // write 2
        assert_eq!(fi.durable_fault("snap", 10), Some(DurableFault::CrashPoint));
        assert_eq!(fi.durable_fault("snap", 10), Some(DurableFault::CrashPoint));
    }

    #[test]
    fn clones_share_the_write_sequence() {
        let cfg = FaultConfig { crash_after_writes: Some(2), ..FaultConfig::default() };
        let a = FaultInjector::new(cfg);
        let b = a.clone();
        assert!(a.durable_fault("snap", 10).is_none());
        assert!(b.durable_fault("snap", 10).is_none());
        assert_eq!(a.durable_fault("snap", 10), Some(DurableFault::CrashPoint));
    }

    #[test]
    fn torn_writes_truncate_strictly_below_the_payload_length() {
        let cfg = FaultConfig { seed: 11, torn_write_p: 1.0, ..FaultConfig::default() };
        let fi = FaultInjector::new(cfg);
        for _ in 0..100 {
            match fi.durable_fault("snap", 64) {
                Some(DurableFault::TornWrite { keep_bytes }) => assert!(keep_bytes < 64),
                other => panic!("p=1.0 torn write did not fire: {other:?}"),
            }
        }
    }

    #[test]
    fn torn_write_schedule_is_deterministic_per_seed() {
        let mk = || {
            FaultInjector::new(FaultConfig { seed: 7, torn_write_p: 0.3, ..FaultConfig::default() })
        };
        let (a, b) = (mk(), mk());
        for _ in 0..200 {
            assert_eq!(a.durable_fault("snap", 128), b.durable_fault("snap", 128));
        }
    }

    #[test]
    fn retry_can_clear_an_inference_fault() {
        // At p = 0.5 some (query, attempt) pairs fault and others do not;
        // verify the attempt index actually changes the decision.
        let fi = FaultInjector::new(FaultConfig::chaos(4, 0.5));
        let varies = (0..50).any(|i| {
            let q = format!("q{i}");
            fi.inference_fault(&q, 0).is_some() != fi.inference_fault(&q, 1).is_some()
        });
        assert!(varies, "attempt index never changed the fault decision");
    }
}
