//! Random-schema database generator.
//!
//! The Zero-Shot cost model (Hilprecht & Binnig) is pretrained on *many
//! different databases* and then transferred. The paper trains it on the
//! authors' 19 databases / 77 workloads; we substitute a family of seeded
//! random schemas that exercise the same transfer code path.

use super::{meta_of, TableBuilder};
use crate::catalog::{Catalog, Database, ForeignKey, IndexMeta};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generate a random star/snowflake-ish schema with `n_tables` relations and
/// a spanning tree of FK edges plus a few extra edges.
pub fn generate(name: &str, n_tables: usize, base_rows: usize, seed: u64) -> Database {
    assert!(n_tables >= 2, "need at least two tables");
    let mut rng = StdRng::seed_from_u64(seed);

    // Decide sizes first: a mix of large fact tables and small dimensions.
    let sizes: Vec<usize> = (0..n_tables)
        .map(|i| {
            if i == 0 {
                base_rows * 4 // central fact table
            } else if rng.gen_bool(0.4) {
                rng.gen_range(base_rows / 20..base_rows / 2).max(8)
            } else {
                rng.gen_range(base_rows / 2..base_rows * 2).max(8)
            }
        })
        .collect();

    // Spanning tree: table i (i>0) references some earlier table.
    let mut parent_of: Vec<usize> = vec![0; n_tables];
    for (i, p) in parent_of.iter_mut().enumerate().skip(1) {
        *p = rng.gen_range(0..i);
    }

    // Pre-draw the per-table randomness so the builder can hold the RNG
    // exclusively while generating data.
    struct TableSpec {
        fk_skew: f64,
        attrs: Vec<(usize, f64)>,
    }
    let specs: Vec<TableSpec> = (0..n_tables)
        .map(|_| TableSpec {
            fk_skew: rng.gen_range(0.5..1.6),
            attrs: (0..rng.gen_range(1..=3usize))
                .map(|_| (rng.gen_range(4..400usize), rng.gen_range(0.0..1.8)))
                .collect(),
        })
        .collect();

    let mut tables = Vec::with_capacity(n_tables);
    let mut foreign_keys = Vec::new();
    for i in 0..n_tables {
        let tname = format!("{name}_t{i}");
        let spec = &specs[i];
        let mut b = TableBuilder::new(&tname, sizes[i], &mut rng).pk("id");
        if i > 0 {
            let p = parent_of[i];
            let col = format!("t{p}_id");
            b = b.fk(&col, sizes[p], spec.fk_skew);
            foreign_keys.push(ForeignKey {
                from_table: tname.clone(),
                from_col: col,
                to_table: format!("{name}_t{p}"),
                to_col: "id".into(),
            });
        }
        for (a, &(distinct, skew)) in spec.attrs.iter().enumerate() {
            b = b.int_attr(&format!("attr{a}"), distinct, skew);
        }
        tables.push(b.build());
    }

    // A couple of extra non-tree edges on larger schemas (cycles in the join
    // graph, like movie_info/movie_info_idx both referencing info_type).
    if n_tables >= 4 {
        let extra = rng.gen_range(0..=(n_tables / 3));
        for _ in 0..extra {
            let from = rng.gen_range(1..n_tables);
            let to = rng.gen_range(0..from);
            let col = format!("x{to}_id");
            if tables[from].col_idx(&col).is_some() {
                continue;
            }
            let parent_rows = tables[to].n_rows();
            // Rebuild the table with one extra FK column appended.
            let mut t = tables[from].clone();
            let z = crate::zipf::Zipf::new(parent_rows, rng.gen_range(0.3..1.4));
            let data: Vec<i64> = (0..t.n_rows()).map(|_| z.sample(&mut rng) as i64).collect();
            t.columns.push(crate::table::Column {
                name: col.clone(),
                data: crate::table::ColumnData::Int(data),
            });
            foreign_keys.push(ForeignKey {
                from_table: t.name.clone(),
                from_col: col,
                to_table: tables[to].name.clone(),
                to_col: "id".into(),
            });
            tables[from] = t;
        }
    }

    let mut indexes = Vec::new();
    for t in &tables {
        indexes.push(IndexMeta::for_column(&t.name, "id", t.n_rows(), true));
    }
    for e in &foreign_keys {
        let rows = tables.iter().find(|t| t.name == e.from_table).expect("fk table").n_rows();
        indexes.push(IndexMeta::for_column(&e.from_table, &e.from_col, rows, false));
    }

    let catalog = Catalog { tables: tables.iter().map(meta_of).collect(), foreign_keys, indexes };
    Database::new(name, catalog, tables)
}

/// The family of training databases used for Zero-Shot pretraining.
pub fn training_family(count: usize, base_rows: usize, seed: u64) -> Vec<Database> {
    (0..count)
        .map(|i| {
            let n_tables = 3 + (i % 5);
            generate(&format!("zdb{i}"), n_tables, base_rows, seed.wrapping_add(i as u64 * 101))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_connected_join_graph() {
        let db = generate("z", 6, 500, 3);
        assert_eq!(db.catalog.num_tables(), 6);
        // Spanning tree ⇒ at least n-1 edges.
        assert!(db.catalog.num_joins() >= 5);
        // Every non-root table has at least one incident edge.
        for t in &db.catalog.tables {
            assert!(!db.catalog.joins_of(&t.name).is_empty() || t.name.ends_with("t0"));
        }
    }

    #[test]
    fn fk_values_in_parent_range() {
        let db = generate("z", 5, 300, 9);
        for e in &db.catalog.foreign_keys {
            let child = db.table(&e.from_table).unwrap();
            let parent_rows = db.table(&e.to_table).unwrap().n_rows() as i64;
            let col = child.col(&e.from_col);
            for i in 0..child.n_rows() {
                assert!((0..parent_rows).contains(&col.data.key(i)));
            }
        }
    }

    #[test]
    fn family_members_differ() {
        let family = training_family(4, 200, 1);
        assert_eq!(family.len(), 4);
        let names: Vec<_> = family.iter().map(|d| d.name.clone()).collect();
        assert_eq!(names, vec!["zdb0", "zdb1", "zdb2", "zdb3"]);
        assert_ne!(family[0].catalog.num_tables(), family[2].catalog.num_tables());
    }

    #[test]
    fn deterministic() {
        let a = generate("z", 4, 200, 42);
        let b = generate("z", 4, 200, 42);
        assert_eq!(a.total_rows(), b.total_rows());
        assert_eq!(a.catalog.num_joins(), b.catalog.num_joins());
    }
}
