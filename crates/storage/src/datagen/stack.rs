//! StackExchange-shaped synthetic database (substrate for the Stack
//! workload used by Bao and the paper).
//!
//! Ten relations centered on `question`/`answer`/`so_user`, with
//! high-variance but unimodal value distributions — the paper observes that
//! Stack "follows normal distributions with high variance" and no
//! multimodality, unlike JOB.

use super::{meta_of, scaled, TableBuilder};
use crate::catalog::{Catalog, Database, ForeignKey, IndexMeta};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SIZES: [(&str, usize); 10] = [
    ("site", 20),
    ("so_user", 3_000),
    ("question", 4_000),
    ("answer", 6_000),
    ("tag", 200),
    ("tag_question", 8_000),
    ("badge", 3_000),
    ("comment", 5_000),
    ("post_link", 800),
    ("vote", 8_000),
];

fn size_of(name: &str, scale: f64) -> usize {
    let base = SIZES
        .iter()
        .find(|(n, _)| *n == name)
        .unwrap_or_else(|| panic!("unknown stack table {name}"))
        .1;
    scaled(base, scale)
}

/// Generate the Stack-shaped database.
pub fn generate(scale: f64, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_site = size_of("site", scale.max(0.25)).min(50);
    let n_user = size_of("so_user", scale);
    let n_q = size_of("question", scale);
    let n_a = size_of("answer", scale);
    let n_tag = size_of("tag", scale);

    let site = TableBuilder::new("site", n_site, &mut rng)
        .pk("id")
        .text_attr("site_name", 60, 1, 0.3)
        .build();

    let so_user = TableBuilder::new("so_user", n_user, &mut rng)
        .pk("id")
        .fk("site_id", n_site, 0.8)
        .int_attr("reputation", 5_000, 1.6)
        .int_range_recent("creation_year", 2008, 2024, 0.4)
        .build();

    let question = TableBuilder::new("question", n_q, &mut rng)
        .pk("id")
        .fk("site_id", n_site, 0.8)
        .fk("owner_user_id", n_user, 1.2)
        .int_attr("score", 300, 1.5)
        .int_attr("view_count", 10_000, 1.4)
        .text_attr("title", 1_000, 4, 1.0)
        .build();

    let answer = TableBuilder::new("answer", n_a, &mut rng)
        .pk("id")
        .fk("site_id", n_site, 0.8)
        .fk("question_id", n_q, 1.1)
        .fk("owner_user_id", n_user, 1.3)
        .int_attr("score", 200, 1.5)
        .build();

    let tag = TableBuilder::new("tag", n_tag, &mut rng)
        .pk("id")
        .fk("site_id", n_site, 0.6)
        .text_attr("name", 200, 1, 1.1)
        .build();

    let tag_question = TableBuilder::new("tag_question", size_of("tag_question", scale), &mut rng)
        .pk("id")
        .fk("question_id", n_q, 1.0)
        .fk("tag_id", n_tag, 1.5)
        .build();

    let badge = TableBuilder::new("badge", size_of("badge", scale), &mut rng)
        .pk("id")
        .fk("user_id", n_user, 1.4)
        .int_attr("badge_class", 3, 0.9)
        .build();

    let comment = TableBuilder::new("comment", size_of("comment", scale), &mut rng)
        .pk("id")
        .fk("question_id", n_q, 1.2)
        .fk("user_id", n_user, 1.3)
        .int_attr("score", 50, 1.2)
        .build();

    let post_link = TableBuilder::new("post_link", size_of("post_link", scale), &mut rng)
        .pk("id")
        .fk("question_from", n_q, 1.0)
        .fk("question_to", n_q, 1.4)
        .build();

    let vote = TableBuilder::new("vote", size_of("vote", scale), &mut rng)
        .pk("id")
        .fk("question_id", n_q, 1.3)
        .fk("user_id", n_user, 1.1)
        .int_attr("vote_type", 10, 1.5)
        .build();

    let tables =
        vec![site, so_user, question, answer, tag, tag_question, badge, comment, post_link, vote];

    let foreign_keys = vec![
        fk("so_user", "site_id", "site", "id"),
        fk("question", "site_id", "site", "id"),
        fk("question", "owner_user_id", "so_user", "id"),
        fk("answer", "site_id", "site", "id"),
        fk("answer", "question_id", "question", "id"),
        fk("answer", "owner_user_id", "so_user", "id"),
        fk("tag", "site_id", "site", "id"),
        fk("tag_question", "question_id", "question", "id"),
        fk("tag_question", "tag_id", "tag", "id"),
        fk("badge", "user_id", "so_user", "id"),
        fk("comment", "question_id", "question", "id"),
        fk("comment", "user_id", "so_user", "id"),
        fk("post_link", "question_from", "question", "id"),
        fk("post_link", "question_to", "question", "id"),
        fk("vote", "question_id", "question", "id"),
        fk("vote", "user_id", "so_user", "id"),
    ];

    let mut indexes = Vec::new();
    for t in &tables {
        indexes.push(IndexMeta::for_column(&t.name, "id", t.n_rows(), true));
    }
    for e in &foreign_keys {
        let rows = tables.iter().find(|t| t.name == e.from_table).expect("fk table").n_rows();
        indexes.push(IndexMeta::for_column(&e.from_table, &e.from_col, rows, false));
    }

    let catalog = Catalog { tables: tables.iter().map(meta_of).collect(), foreign_keys, indexes };
    Database::new("stack", catalog, tables)
}

fn fk(from_table: &str, from_col: &str, to_table: &str, to_col: &str) -> ForeignKey {
    ForeignKey {
        from_table: from_table.into(),
        from_col: from_col.into(),
        to_table: to_table.into(),
        to_col: to_col.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_shape() {
        let db = generate(0.2, 11);
        assert_eq!(db.catalog.num_tables(), 10);
        assert_eq!(db.catalog.num_joins(), 16);
    }

    #[test]
    fn fks_valid() {
        let db = generate(0.1, 11);
        for e in &db.catalog.foreign_keys {
            let child = db.table(&e.from_table).unwrap();
            let parent_rows = db.table(&e.to_table).unwrap().n_rows() as i64;
            let col = child.col(&e.from_col);
            for i in 0..child.n_rows() {
                assert!((0..parent_rows).contains(&col.data.key(i)));
            }
        }
    }

    #[test]
    fn self_referencing_question_links() {
        let db = generate(0.2, 11);
        // post_link has two independent FK edges into question.
        let edges = db.catalog.joins_of("post_link");
        assert_eq!(edges.len(), 2);
    }

    #[test]
    fn larger_scale_means_more_rows() {
        let small = generate(0.1, 1);
        let big = generate(0.4, 1);
        assert!(big.total_rows() > 2 * small.total_rows());
    }
}
