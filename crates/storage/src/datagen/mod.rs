//! Synthetic database generators.
//!
//! The paper evaluates on the real IMDb (7.2 GB) and StackExchange (100 GB)
//! dumps. Those artifacts are substituted (see `DESIGN.md` §5) by seeded
//! generators that reproduce the *distributional shape* the evaluation
//! depends on: Zipf-skewed foreign keys (long-tailed join fan-outs),
//! correlated attributes (which break the optimizer's independence
//! assumption), dictionary text columns, and realistic relative table sizes.

pub mod imdb;
pub mod stack;
pub mod synthdb;

use crate::catalog::{ColumnMeta, TableMeta};
use crate::table::{Column, ColumnData, Table, TextBuilder};
use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::Rng;

/// Fluent builder for one synthetic table.
pub struct TableBuilder<'a> {
    name: String,
    n_rows: usize,
    rng: &'a mut StdRng,
    columns: Vec<Column>,
}

impl<'a> TableBuilder<'a> {
    pub fn new(name: &str, n_rows: usize, rng: &'a mut StdRng) -> Self {
        Self { name: name.into(), n_rows: n_rows.max(1), rng, columns: Vec::new() }
    }

    /// Dense primary key `0..n`.
    pub fn pk(mut self, name: &str) -> Self {
        let data = (0..self.n_rows as i64).collect();
        self.columns.push(Column { name: name.into(), data: ColumnData::Int(data) });
        self
    }

    /// Foreign key into a parent with `parent_rows` rows. `skew = 0` is
    /// uniform; larger values concentrate references on few parents
    /// (long-tailed fan-out, the IMDb/Stack regime).
    pub fn fk(mut self, name: &str, parent_rows: usize, skew: f64) -> Self {
        let z = Zipf::new(parent_rows.max(1), skew);
        // Permute ranks so the "hot" parents are spread over the key space
        // rather than always being the low ids (avoids accidental
        // correlation between every pair of FK columns).
        let perm = permutation(parent_rows.max(1), self.rng);
        let data = (0..self.n_rows).map(|_| perm[z.sample(self.rng)] as i64).collect();
        self.columns.push(Column { name: name.into(), data: ColumnData::Int(data) });
        self
    }

    /// Categorical integer attribute with `n_distinct` values, Zipf-skewed.
    pub fn int_attr(mut self, name: &str, n_distinct: usize, skew: f64) -> Self {
        let z = Zipf::new(n_distinct.max(1), skew);
        let data = (0..self.n_rows).map(|_| z.sample(self.rng) as i64).collect();
        self.columns.push(Column { name: name.into(), data: ColumnData::Int(data) });
        self
    }

    /// Integer attribute over `[lo, hi]` with the *high* end most frequent
    /// (e.g. production years: recent years dominate).
    pub fn int_range_recent(mut self, name: &str, lo: i64, hi: i64, skew: f64) -> Self {
        let n = (hi - lo + 1).max(1) as usize;
        let z = Zipf::new(n, skew);
        let data = (0..self.n_rows).map(|_| hi - z.sample(self.rng) as i64).collect();
        self.columns.push(Column { name: name.into(), data: ColumnData::Int(data) });
        self
    }

    /// Integer attribute *correlated* with an existing column: value is a
    /// noisy function of the source column. This intentionally violates the
    /// attribute-independence assumption of the PG-style estimator.
    pub fn int_correlated(mut self, name: &str, source: &str, buckets: i64, noise: f64) -> Self {
        let src = self
            .columns
            .iter()
            .find(|c| c.name == source)
            .unwrap_or_else(|| panic!("correlated source column {source} missing"))
            .data
            .clone();
        let data = (0..self.n_rows)
            .map(|i| {
                let base = (src.key(i).rem_euclid(buckets.max(1))) as f64;
                let jitter = self.rng.gen_range(-noise..=noise);
                ((base + jitter).round() as i64).rem_euclid(buckets.max(1))
            })
            .collect();
        self.columns.push(Column { name: name.into(), data: ColumnData::Int(data) });
        self
    }

    /// Float attribute, uniform in `[lo, hi)`.
    pub fn float_attr(mut self, name: &str, lo: f64, hi: f64) -> Self {
        let data = (0..self.n_rows).map(|_| self.rng.gen_range(lo..hi)).collect();
        self.columns.push(Column { name: name.into(), data: ColumnData::Float(data) });
        self
    }

    /// Text attribute built from `words` Zipf-sampled vocabulary tokens.
    pub fn text_attr(mut self, name: &str, vocab_size: usize, words: usize, skew: f64) -> Self {
        let z = Zipf::new(vocab_size.max(1), skew);
        let mut tb = TextBuilder::new();
        let mut buf = String::new();
        for _ in 0..self.n_rows {
            buf.clear();
            for w in 0..words {
                if w > 0 {
                    buf.push(' ');
                }
                buf.push_str(&word(z.sample(self.rng)));
            }
            tb.push(&buf);
        }
        self.columns.push(Column { name: name.into(), data: tb.finish() });
        self
    }

    pub fn build(self) -> Table {
        Table::new(self.name, self.columns)
    }
}

/// Deterministic pseudo-word for vocabulary token `k` ("mova", "terin", ...).
pub fn word(k: usize) -> String {
    const ONSETS: [&str; 12] = ["m", "t", "k", "s", "r", "l", "d", "b", "p", "v", "n", "g"];
    const NUCLEI: [&str; 6] = ["a", "e", "i", "o", "u", "ai"];
    let mut s = String::new();
    let mut x = k + 1;
    while x > 0 {
        s.push_str(ONSETS[x % ONSETS.len()]);
        s.push_str(NUCLEI[(x / ONSETS.len()) % NUCLEI.len()]);
        x /= ONSETS.len() * NUCLEI.len();
    }
    s
}

fn permutation(n: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut p: Vec<usize> = (0..n).collect();
    // Fisher-Yates
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        p.swap(i, j);
    }
    p
}

/// Derive [`TableMeta`] from a materialized table.
pub fn meta_of(table: &Table) -> TableMeta {
    TableMeta {
        name: table.name.clone(),
        columns: table
            .columns
            .iter()
            .map(|c| ColumnMeta { name: c.name.clone(), dtype: c.data.dtype() })
            .collect(),
    }
}

/// Scale factor helper: `(base as f64 * scale).round()`, at least 2 rows.
pub fn scaled(base: usize, scale: f64) -> usize {
    ((base as f64 * scale).round() as usize).max(2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn builder_produces_consistent_table() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = TableBuilder::new("t", 100, &mut rng)
            .pk("id")
            .fk("parent_id", 10, 1.0)
            .int_attr("kind", 5, 0.8)
            .float_attr("score", 0.0, 10.0)
            .text_attr("label", 50, 2, 1.0)
            .build();
        assert_eq!(t.n_rows(), 100);
        assert_eq!(t.n_cols(), 5);
        // PK is dense
        for i in 0..100 {
            assert_eq!(t.col("id").data.key(i), i as i64);
        }
        // FK within range
        for i in 0..100 {
            let v = t.col("parent_id").data.key(i);
            assert!((0..10).contains(&v));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let gen = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            TableBuilder::new("t", 50, &mut rng).fk("x", 20, 1.2).build()
        };
        let a = gen(9);
        let b = gen(9);
        let c = gen(10);
        assert_eq!(
            (0..50).map(|i| a.col("x").data.key(i)).collect::<Vec<_>>(),
            (0..50).map(|i| b.col("x").data.key(i)).collect::<Vec<_>>()
        );
        assert_ne!(
            (0..50).map(|i| a.col("x").data.key(i)).collect::<Vec<_>>(),
            (0..50).map(|i| c.col("x").data.key(i)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn correlated_column_tracks_source() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = TableBuilder::new("t", 500, &mut rng)
            .pk("id")
            .int_attr("a", 20, 0.0)
            .int_correlated("b", "a", 20, 0.0)
            .build();
        // With zero noise, b == a mod 20 exactly.
        for i in 0..500 {
            assert_eq!(t.col("b").data.key(i), t.col("a").data.key(i).rem_euclid(20));
        }
    }

    #[test]
    fn recent_skew_favors_high_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = TableBuilder::new("t", 2000, &mut rng)
            .int_range_recent("year", 1900, 2020, 1.0)
            .build();
        let years: Vec<i64> = (0..2000).map(|i| t.col("year").data.key(i)).collect();
        let recent = years.iter().filter(|&&y| y >= 2000).count();
        let old = years.iter().filter(|&&y| y < 1950).count();
        assert!(recent > old, "recent {recent} old {old}");
        assert!(years.iter().all(|&y| (1900..=2020).contains(&y)));
    }

    #[test]
    fn words_are_distinct_and_stable() {
        let a = word(0);
        assert_eq!(a, word(0));
        let mut all: Vec<String> = (0..500).map(word).collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 500);
    }

    #[test]
    fn scaled_floor() {
        assert_eq!(scaled(1000, 0.5), 500);
        assert_eq!(scaled(1, 0.001), 2);
    }
}
