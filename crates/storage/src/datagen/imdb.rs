//! IMDb-shaped synthetic database (substrate for the Synthetic and JOB
//! workloads).
//!
//! Mirrors the 16 most-used JOB relations with the real dataset's *relative*
//! sizes (cast_info ≫ movie_info ≫ title ≫ dimension tables), Zipf-skewed
//! foreign keys and a correlated (`production_year`, `kind_id`) pair that
//! defeats independence-assumption estimators the same way real IMDb does.

use super::{meta_of, scaled, TableBuilder};
use crate::catalog::{Catalog, Database, ForeignKey, IndexMeta};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Relative base sizes at `scale = 1.0` (~35k rows total: large enough for
/// meaningful skew, small enough that a 16-join plan executes in
/// milliseconds).
const SIZES: [(&str, usize); 16] = [
    ("title", 2_000),
    ("movie_info", 6_000),
    ("movie_info_idx", 1_500),
    ("cast_info", 8_000),
    ("movie_keyword", 3_000),
    ("movie_companies", 2_500),
    ("name", 3_000),
    ("char_name", 2_000),
    ("company_name", 300),
    ("keyword", 400),
    ("person_info", 2_500),
    ("aka_name", 800),
    ("info_type", 113),
    ("kind_type", 7),
    ("company_type", 4),
    ("role_type", 12),
];

fn size_of(name: &str, scale: f64) -> usize {
    let base = SIZES
        .iter()
        .find(|(n, _)| *n == name)
        .unwrap_or_else(|| panic!("unknown imdb table {name}"))
        .1;
    scaled(base, scale)
}

/// A workload-drift profile: deviations from the canonical IMDb shape that
/// change the *relative* costs of join orders (the drivers a query optimizer
/// keys on) without touching the schema. An empty profile reproduces
/// [`generate`] exactly.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ImdbDrift {
    /// `(table, multiplier)`: scale a table's row count. Rebalancing the
    /// fact tables (shrink `cast_info`, grow `movie_info`) flips which join
    /// inputs are cheap.
    pub size_mult: Vec<(String, f64)>,
    /// `(table, column, zipf_exponent)`: replace a foreign key's skew
    /// exponent. Lowering it flattens a hot-spot fan-out; raising it
    /// concentrates one.
    pub fk_skew: Vec<(String, String, f64)>,
}

impl ImdbDrift {
    fn size(&self, name: &str, scale: f64) -> usize {
        let base = size_of(name, scale);
        match self.size_mult.iter().find(|(t, _)| t == name) {
            Some((_, m)) => ((base as f64 * m).round() as usize).max(1),
            None => base,
        }
    }

    fn skew(&self, table: &str, col: &str, default: f64) -> f64 {
        self.fk_skew
            .iter()
            .find(|(t, c, _)| t == table && c == col)
            .map(|(_, _, e)| *e)
            .unwrap_or(default)
    }
}

/// Generate the IMDb-shaped database.
///
/// `scale` multiplies every table's row count; `seed` fixes all content.
pub fn generate(scale: f64, seed: u64) -> Database {
    generate_drifted(scale, seed, &ImdbDrift::default())
}

/// Generate the IMDb-shaped database with a [`ImdbDrift`] profile applied.
/// Same schema and determinism guarantees as [`generate`]; only row counts
/// and foreign-key skews move.
pub fn generate_drifted(scale: f64, seed: u64, drift: &ImdbDrift) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_title = drift.size("title", scale);
    let n_name = drift.size("name", scale);
    let n_char = drift.size("char_name", scale);
    let n_comp = drift.size("company_name", scale);
    let n_kw = drift.size("keyword", scale);
    let n_info_type = size_of("info_type", scale.max(0.5)).min(113);
    let n_kind = 7;
    let n_ctype = 4;
    let n_role = 12;

    let title = TableBuilder::new("title", n_title, &mut rng)
        .pk("id")
        .text_attr("title", 600, 3, 1.05)
        .int_attr("kind_id", n_kind, 1.4)
        .int_range_recent("production_year", 1890, 2024, 0.9)
        // episode_nr correlates with kind_id: series episodes cluster.
        .int_correlated("episode_nr", "kind_id", 50, 4.0)
        .build();

    let movie_info = TableBuilder::new("movie_info", drift.size("movie_info", scale), &mut rng)
        .pk("id")
        .fk("movie_id", n_title, drift.skew("movie_info", "movie_id", 1.1))
        .int_attr("info_type_id", n_info_type, 1.3)
        .text_attr("info", 800, 2, 1.1)
        .build();

    let movie_info_idx =
        TableBuilder::new("movie_info_idx", drift.size("movie_info_idx", scale), &mut rng)
            .pk("id")
            .fk("movie_id", n_title, drift.skew("movie_info_idx", "movie_id", 0.9))
            .int_attr("info_type_id", n_info_type, 1.2)
            .float_attr("info", 1.0, 10.0) // ratings
            .build();

    let cast_info = TableBuilder::new("cast_info", drift.size("cast_info", scale), &mut rng)
        .pk("id")
        .fk("movie_id", n_title, drift.skew("cast_info", "movie_id", 1.2))
        .fk("person_id", n_name, drift.skew("cast_info", "person_id", 1.1))
        .fk("person_role_id", n_char, drift.skew("cast_info", "person_role_id", 1.0))
        .int_attr("role_id", n_role, 1.3)
        .int_attr("nr_order", 40, 1.0)
        .build();

    let movie_keyword =
        TableBuilder::new("movie_keyword", drift.size("movie_keyword", scale), &mut rng)
            .pk("id")
            .fk("movie_id", n_title, drift.skew("movie_keyword", "movie_id", 1.0))
            .fk("keyword_id", n_kw, drift.skew("movie_keyword", "keyword_id", 1.4))
            .build();

    let movie_companies =
        TableBuilder::new("movie_companies", drift.size("movie_companies", scale), &mut rng)
            .pk("id")
            .fk("movie_id", n_title, drift.skew("movie_companies", "movie_id", 1.0))
            .fk("company_id", n_comp, drift.skew("movie_companies", "company_id", 1.3))
            .int_attr("company_type_id", n_ctype, 0.8)
            .build();

    let name = TableBuilder::new("name", n_name, &mut rng)
        .pk("id")
        .text_attr("name", 900, 2, 1.0)
        .int_attr("gender", 3, 0.6)
        .build();

    let char_name = TableBuilder::new("char_name", n_char, &mut rng)
        .pk("id")
        .text_attr("name", 700, 2, 1.1)
        .build();

    let company_name = TableBuilder::new("company_name", n_comp, &mut rng)
        .pk("id")
        .text_attr("name", 200, 2, 1.0)
        .int_attr("country_code", 60, 1.5)
        .build();

    let keyword = TableBuilder::new("keyword", n_kw, &mut rng)
        .pk("id")
        .text_attr("keyword", 400, 1, 1.2)
        .build();

    let person_info = TableBuilder::new("person_info", drift.size("person_info", scale), &mut rng)
        .pk("id")
        .fk("person_id", n_name, drift.skew("person_info", "person_id", 1.2))
        .int_attr("info_type_id", n_info_type, 1.1)
        .build();

    let aka_name = TableBuilder::new("aka_name", drift.size("aka_name", scale), &mut rng)
        .pk("id")
        .fk("person_id", n_name, drift.skew("aka_name", "person_id", 1.3))
        .text_attr("name", 500, 2, 1.0)
        .build();

    let info_type = TableBuilder::new("info_type", n_info_type, &mut rng)
        .pk("id")
        .text_attr("info", 150, 1, 0.5)
        .build();

    let kind_type = TableBuilder::new("kind_type", n_kind, &mut rng)
        .pk("id")
        .text_attr("kind", 7, 1, 0.0)
        .build();

    let company_type = TableBuilder::new("company_type", n_ctype, &mut rng)
        .pk("id")
        .text_attr("kind", 4, 1, 0.0)
        .build();

    let role_type = TableBuilder::new("role_type", n_role, &mut rng)
        .pk("id")
        .text_attr("role", 12, 1, 0.0)
        .build();

    let tables = vec![
        title,
        movie_info,
        movie_info_idx,
        cast_info,
        movie_keyword,
        movie_companies,
        name,
        char_name,
        company_name,
        keyword,
        person_info,
        aka_name,
        info_type,
        kind_type,
        company_type,
        role_type,
    ];

    let foreign_keys = vec![
        fk("movie_info", "movie_id", "title", "id"),
        fk("movie_info_idx", "movie_id", "title", "id"),
        fk("cast_info", "movie_id", "title", "id"),
        fk("movie_keyword", "movie_id", "title", "id"),
        fk("movie_companies", "movie_id", "title", "id"),
        fk("cast_info", "person_id", "name", "id"),
        fk("cast_info", "person_role_id", "char_name", "id"),
        fk("cast_info", "role_id", "role_type", "id"),
        fk("movie_keyword", "keyword_id", "keyword", "id"),
        fk("movie_companies", "company_id", "company_name", "id"),
        fk("movie_companies", "company_type_id", "company_type", "id"),
        fk("movie_info", "info_type_id", "info_type", "id"),
        fk("movie_info_idx", "info_type_id", "info_type", "id"),
        fk("title", "kind_id", "kind_type", "id"),
        fk("person_info", "person_id", "name", "id"),
        fk("person_info", "info_type_id", "info_type", "id"),
        fk("aka_name", "person_id", "name", "id"),
    ];

    let mut indexes = Vec::new();
    for t in &tables {
        indexes.push(IndexMeta::for_column(&t.name, "id", t.n_rows(), true));
    }
    for e in &foreign_keys {
        let rows = tables.iter().find(|t| t.name == e.from_table).expect("fk table").n_rows();
        indexes.push(IndexMeta::for_column(&e.from_table, &e.from_col, rows, false));
    }

    let catalog = Catalog { tables: tables.iter().map(meta_of).collect(), foreign_keys, indexes };
    Database::new("imdb", catalog, tables)
}

fn fk(from_table: &str, from_col: &str, to_table: &str, to_col: &str) -> ForeignKey {
    ForeignKey {
        from_table: from_table.into(),
        from_col: from_col.into(),
        to_table: to_table.into(),
        to_col: to_col.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_shape() {
        let db = generate(0.2, 7);
        assert_eq!(db.catalog.num_tables(), 16);
        assert_eq!(db.catalog.num_joins(), 17);
        assert!(db.table("cast_info").unwrap().n_rows() > db.table("title").unwrap().n_rows());
        assert!(db.table("title").unwrap().n_rows() > db.table("company_name").unwrap().n_rows());
    }

    #[test]
    fn fks_reference_valid_parents() {
        let db = generate(0.1, 7);
        for e in &db.catalog.foreign_keys {
            let child = db.table(&e.from_table).unwrap();
            let parent_rows = db.table(&e.to_table).unwrap().n_rows() as i64;
            let col = child.col(&e.from_col);
            for i in 0..child.n_rows() {
                let v = col.data.key(i);
                assert!(
                    (0..parent_rows).contains(&v),
                    "{}.{} row {} = {} out of parent range {}",
                    e.from_table,
                    e.from_col,
                    i,
                    v,
                    parent_rows
                );
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(0.1, 5);
        let b = generate(0.1, 5);
        assert_eq!(
            a.table("title").unwrap().col("production_year").data.key(17),
            b.table("title").unwrap().col("production_year").data.key(17)
        );
    }

    #[test]
    fn fk_skew_present() {
        // The most referenced movie must absorb far more cast_info rows than
        // the median movie (long-tail fan-out).
        let db = generate(0.5, 7);
        let ci = db.table("cast_info").unwrap();
        let n_title = db.table("title").unwrap().n_rows();
        let mut counts = vec![0usize; n_title];
        let col = ci.col("movie_id");
        for i in 0..ci.n_rows() {
            counts[col.data.key(i) as usize] += 1;
        }
        counts.sort_unstable();
        let max = *counts.last().unwrap();
        let median = counts[counts.len() / 2];
        assert!(max >= 10 * median.max(1), "max {max} median {median}");
    }

    #[test]
    fn empty_drift_is_identity() {
        let a = generate(0.1, 5);
        let b = generate_drifted(0.1, 5, &ImdbDrift::default());
        assert_eq!(a.table("cast_info").unwrap().n_rows(), b.table("cast_info").unwrap().n_rows());
        assert_eq!(
            a.table("title").unwrap().col("production_year").data.key(17),
            b.table("title").unwrap().col("production_year").data.key(17)
        );
    }

    /// Per-parent fan-out concentration: max child count over the uniform
    /// expectation. High for Zipf-hot keys, ~1 for flat ones.
    fn max_fanout_ratio(db: &Database, child: &str, col: &str, parent: &str) -> f64 {
        let c = db.table(child).unwrap();
        let n_parent = db.table(parent).unwrap().n_rows();
        let mut counts = vec![0usize; n_parent];
        let data = c.col(col);
        for i in 0..c.n_rows() {
            counts[data.data.key(i) as usize] += 1;
        }
        *counts.iter().max().unwrap() as f64 / (c.n_rows() as f64 / n_parent as f64)
    }

    #[test]
    fn drift_rebalances_sizes_and_flattens_skew() {
        let drift = ImdbDrift {
            size_mult: vec![("cast_info".into(), 0.25), ("movie_info".into(), 2.0)],
            fk_skew: vec![("cast_info".into(), "movie_id".into(), 0.2)],
        };
        let base = generate(0.3, 7);
        let d = generate_drifted(0.3, 7, &drift);
        assert!(
            d.table("cast_info").unwrap().n_rows() * 3 < base.table("cast_info").unwrap().n_rows()
        );
        assert!(
            d.table("movie_info").unwrap().n_rows() > base.table("movie_info").unwrap().n_rows()
        );
        // Exponent 1.2 → 0.2 flattens the hot-movie fan-out.
        let before = max_fanout_ratio(&base, "cast_info", "movie_id", "title");
        let after = max_fanout_ratio(&d, "cast_info", "movie_id", "title");
        assert!(after < before / 2.0, "fan-out concentration {before:.1} -> {after:.1}");
        // FK integrity survives the rebalance.
        for e in &d.catalog.foreign_keys {
            let child = d.table(&e.from_table).unwrap();
            let parent_rows = d.table(&e.to_table).unwrap().n_rows() as i64;
            let col = child.col(&e.from_col);
            for i in 0..child.n_rows() {
                assert!((0..parent_rows).contains(&col.data.key(i)));
            }
        }
    }

    #[test]
    fn indexes_cover_all_pks_and_fks() {
        let db = generate(0.1, 7);
        for t in &db.tables {
            assert!(db.catalog.index_on(&t.name, "id").is_some(), "{} missing pk index", t.name);
        }
        for e in &db.catalog.foreign_keys {
            assert!(db.catalog.index_on(&e.from_table, &e.from_col).is_some());
        }
    }

    #[test]
    fn correlation_between_year_and_episode() {
        let db = generate(0.5, 7);
        let t = db.table("title").unwrap();
        // episode_nr is a noisy function of kind_id: conditional entropy must
        // be much lower than marginal spread. Check a coarse signal: rows
        // with the same kind_id share episode_nr values far more often than
        // random pairs would.
        let n = t.n_rows();
        let kind = t.col("kind_id");
        let ep = t.col("episode_nr");
        let mut same_kind_same_ep = 0usize;
        let mut same_kind = 0usize;
        for i in 0..n.min(400) {
            for j in (i + 1)..n.min(400) {
                if kind.data.key(i) == kind.data.key(j) {
                    same_kind += 1;
                    if (ep.data.key(i) - ep.data.key(j)).abs() <= 8 {
                        same_kind_same_ep += 1;
                    }
                }
            }
        }
        let frac = same_kind_same_ep as f64 / same_kind.max(1) as f64;
        assert!(frac > 0.5, "correlated pair fraction {frac}");
    }
}
