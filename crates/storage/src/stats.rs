//! ANALYZE-style statistics: equi-depth histograms, most-common values,
//! distinct counts.
//!
//! These statistics power the PG-style cardinality estimator in
//! `qpseeker-engine` — including its *systematic errors* on correlated,
//! many-join queries, which are exactly what the paper's evaluation exposes.

use crate::error::StorageError;
use crate::table::Table;
use serde::{Deserialize, Serialize};

/// Number of histogram buckets (PostgreSQL's default statistics target is
/// 100; we use the same).
pub const HISTOGRAM_BUCKETS: usize = 100;
/// Number of most-common values tracked per column.
pub const NUM_MCVS: usize = 10;
/// Simulated page size in bytes (PostgreSQL block size).
pub const BLOCK_SIZE: usize = 8192;

/// Equi-depth histogram over the numeric projection of a column.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    /// `buckets + 1` ascending bound values; bucket `i` covers
    /// `[bounds[i], bounds[i+1])` and holds ~`1/buckets` of the rows.
    pub bounds: Vec<f64>,
}

impl Histogram {
    /// Build from raw values (sorted copy internally).
    pub fn build(values: &[f64], buckets: usize) -> Self {
        assert!(buckets > 0, "histogram needs at least one bucket");
        if values.is_empty() {
            return Self { bounds: vec![0.0, 0.0] };
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite stats values"));
        let n = sorted.len();
        let b = buckets.min(n).max(1);
        let mut bounds = Vec::with_capacity(b + 1);
        for i in 0..=b {
            let idx = (i * (n - 1)) / b;
            bounds.push(sorted[idx]);
        }
        Self { bounds }
    }

    pub fn num_buckets(&self) -> usize {
        self.bounds.len() - 1
    }

    pub fn min(&self) -> f64 {
        self.bounds[0]
    }

    pub fn max(&self) -> f64 {
        *self.bounds.last().expect("histogram has bounds")
    }

    /// Estimated selectivity of `col < v` assuming equi-depth buckets with
    /// linear interpolation inside a bucket (PostgreSQL's ineq_histogram
    /// approach).
    pub fn selectivity_lt(&self, v: f64) -> f64 {
        let b = self.num_buckets() as f64;
        if v <= self.min() {
            return 0.0;
        }
        if v >= self.max() {
            return 1.0;
        }
        for i in 0..self.num_buckets() {
            let (lo, hi) = (self.bounds[i], self.bounds[i + 1]);
            if v < hi || (v <= hi && i == self.num_buckets() - 1) {
                let frac = if hi > lo { (v - lo) / (hi - lo) } else { 0.5 };
                return ((i as f64) + frac.clamp(0.0, 1.0)) / b;
            }
        }
        1.0
    }

    /// Estimated selectivity of `lo <= col <= hi`.
    pub fn selectivity_range(&self, lo: f64, hi: f64) -> f64 {
        (self.selectivity_lt(hi) - self.selectivity_lt(lo)).max(0.0)
    }
}

/// Per-column statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ColumnStats {
    pub name: String,
    pub n_distinct: usize,
    pub null_frac: f64,
    pub histogram: Histogram,
    /// Most common values with their frequency fractions, descending.
    pub mcvs: Vec<(f64, f64)>,
}

impl ColumnStats {
    /// Selectivity of an equality predicate `col = v`.
    pub fn selectivity_eq(&self, v: f64) -> f64 {
        for &(mv, freq) in &self.mcvs {
            if (mv - v).abs() < f64::EPSILON {
                return freq;
            }
        }
        // Residual mass spread uniformly over non-MCV distinct values.
        let mcv_mass: f64 = self.mcvs.iter().map(|&(_, f)| f).sum();
        let residual_distinct = self.n_distinct.saturating_sub(self.mcvs.len()).max(1);
        ((1.0 - mcv_mass) / residual_distinct as f64).max(1e-9)
    }
}

/// Per-table statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableStats {
    pub table: String,
    pub n_rows: usize,
    pub n_blocks: usize,
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Compute statistics for a table (the ANALYZE command).
    pub fn analyze(table: &Table) -> Self {
        let n_rows = table.n_rows();
        let n_blocks = ((n_rows * table.row_width()) / BLOCK_SIZE).max(1);
        let columns = table
            .columns
            .iter()
            .map(|c| {
                let values: Vec<f64> = (0..n_rows).map(|i| c.data.num(i)).collect();
                let mut sorted = values.clone();
                sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                let n_distinct = count_distinct_sorted(&sorted);
                let mcvs = most_common(&sorted, NUM_MCVS, n_rows);
                ColumnStats {
                    name: c.name.clone(),
                    n_distinct,
                    null_frac: 0.0,
                    histogram: Histogram::build(&values, HISTOGRAM_BUCKETS),
                    mcvs,
                }
            })
            .collect();
        Self { table: table.name.clone(), n_rows, n_blocks, columns }
    }

    pub fn col(&self, name: &str) -> Option<&ColumnStats> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Integrity check: detects corrupted ANALYZE snapshots (NaN or
    /// unsorted histogram bounds, impossible distinct counts) before they
    /// can poison cardinality estimates or cost accounting.
    pub fn validate(&self) -> Result<(), StorageError> {
        let corrupt = |column: &str, reason: &str| StorageError::CorruptStats {
            table: self.table.clone(),
            column: column.to_string(),
            reason: reason.to_string(),
        };
        for c in &self.columns {
            if c.histogram.bounds.len() < 2 {
                return Err(corrupt(&c.name, "histogram has fewer than two bounds"));
            }
            if c.histogram.bounds.iter().any(|b| !b.is_finite()) {
                return Err(corrupt(&c.name, "non-finite histogram bound"));
            }
            if c.histogram.bounds.windows(2).any(|w| w[0] > w[1]) {
                return Err(corrupt(&c.name, "histogram bounds are not ascending"));
            }
            if self.n_rows > 0 && c.n_distinct == 0 {
                return Err(corrupt(&c.name, "zero distinct values in a non-empty table"));
            }
            if c.mcvs.iter().any(|&(v, f)| !v.is_finite() || !(0.0..=1.0).contains(&f)) {
                return Err(corrupt(&c.name, "MCV value or frequency out of range"));
            }
        }
        Ok(())
    }
}

fn count_distinct_sorted(sorted: &[f64]) -> usize {
    if sorted.is_empty() {
        return 0;
    }
    1 + sorted.windows(2).filter(|w| w[0] != w[1]).count()
}

fn most_common(sorted: &[f64], k: usize, n_rows: usize) -> Vec<(f64, f64)> {
    if sorted.is_empty() {
        return Vec::new();
    }
    let mut runs: Vec<(f64, usize)> = Vec::new();
    let mut current = sorted[0];
    let mut count = 1usize;
    for &v in &sorted[1..] {
        if v == current {
            count += 1;
        } else {
            runs.push((current, count));
            current = v;
            count = 1;
        }
    }
    runs.push((current, count));
    runs.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    runs.truncate(k);
    // Only keep values that are genuinely common (>1 occurrence), as PG does.
    runs.retain(|&(_, c)| c > 1);
    runs.into_iter().map(|(v, c)| (v, c as f64 / n_rows as f64)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{Column, ColumnData};

    fn int_table(values: Vec<i64>) -> Table {
        Table::new("t", vec![Column { name: "x".into(), data: ColumnData::Int(values) }])
    }

    #[test]
    fn histogram_bounds_are_sorted_and_cover_range() {
        let values: Vec<f64> = (0..1000).map(|i| (i % 97) as f64).collect();
        let h = Histogram::build(&values, 10);
        assert_eq!(h.num_buckets(), 10);
        assert!(h.bounds.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 96.0);
    }

    #[test]
    fn histogram_selectivity_uniform_data() {
        let values: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let h = Histogram::build(&values, 100);
        assert!((h.selectivity_lt(5000.0) - 0.5).abs() < 0.02);
        assert!((h.selectivity_range(2500.0, 7500.0) - 0.5).abs() < 0.03);
        assert_eq!(h.selectivity_lt(-1.0), 0.0);
        assert_eq!(h.selectivity_lt(1e9), 1.0);
    }

    #[test]
    fn histogram_selectivity_skewed_data() {
        // 90% zeros, 10% spread: equi-depth must place most bounds at 0.
        let mut values = vec![0.0; 9000];
        values.extend((0..1000).map(|i| (i + 1) as f64));
        let h = Histogram::build(&values, 100);
        let s = h.selectivity_lt(0.5);
        assert!(s > 0.85, "selectivity below 0.5 should be ~0.9, got {s}");
    }

    #[test]
    fn histogram_empty_and_single() {
        let h = Histogram::build(&[], 10);
        assert_eq!(h.selectivity_lt(1.0), 1.0);
        let h1 = Histogram::build(&[5.0], 10);
        assert_eq!(h1.min(), 5.0);
        assert_eq!(h1.max(), 5.0);
    }

    #[test]
    fn analyze_counts_distinct_and_mcvs() {
        let t = int_table(vec![1, 1, 1, 1, 2, 2, 3, 4, 5, 6]);
        let s = TableStats::analyze(&t);
        assert_eq!(s.n_rows, 10);
        let c = s.col("x").unwrap();
        assert_eq!(c.n_distinct, 6);
        assert_eq!(c.mcvs[0], (1.0, 0.4));
        assert_eq!(c.mcvs[1], (2.0, 0.2));
        // singletons are not MCVs
        assert_eq!(c.mcvs.len(), 2);
    }

    #[test]
    fn equality_selectivity_uses_mcv_then_residual() {
        let t = int_table(vec![1, 1, 1, 1, 2, 2, 3, 4, 5, 6]);
        let s = TableStats::analyze(&t);
        let c = s.col("x").unwrap();
        assert!((c.selectivity_eq(1.0) - 0.4).abs() < 1e-9);
        // residual: (1 - 0.6) / (6 - 2) = 0.1
        assert!((c.selectivity_eq(5.0) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn block_count_scales_with_rows() {
        let small = TableStats::analyze(&int_table((0..10).collect()));
        let large = TableStats::analyze(&int_table((0..100_000).collect()));
        assert!(large.n_blocks > small.n_blocks);
        assert_eq!(large.n_blocks, 100_000 * 8 / BLOCK_SIZE);
    }
}
