//! Typed storage errors.
//!
//! The storage layer is the bottom of the error `From`-chain: engine errors
//! wrap [`StorageError`], core errors wrap engine errors. Variants carry
//! enough context (table, column, page) for the serving layer to decide
//! whether a failure is transient (retry) or permanent (degrade).

use std::fmt;

/// Errors raised by the storage substrate, including injected faults.
#[derive(Debug, Clone, PartialEq)]
pub enum StorageError {
    /// A table name did not resolve against the catalog.
    UnknownTable(String),
    /// ANALYZE statistics are missing for a table that has them by contract.
    MissingStats(String),
    /// A (possibly injected) page-read failure — transient by definition:
    /// a retry re-reads the page.
    PageRead { table: String, page: u64 },
    /// Statistics failed integrity validation (NaN bounds, impossible
    /// counts). Permanent until the table is re-ANALYZEd.
    CorruptStats { table: String, column: String, reason: String },
}

impl StorageError {
    /// Transient errors are worth retrying; permanent ones are not.
    pub fn is_transient(&self) -> bool {
        matches!(self, StorageError::PageRead { .. })
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::UnknownTable(t) => write!(f, "unknown table {t}"),
            StorageError::MissingStats(t) => write!(f, "no statistics for table {t}"),
            StorageError::PageRead { table, page } => {
                write!(f, "page read failed: table {table}, page {page}")
            }
            StorageError::CorruptStats { table, column, reason } => {
                write!(f, "corrupt statistics on {table}.{column}: {reason}")
            }
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_context() {
        let e = StorageError::PageRead { table: "title".into(), page: 7 };
        assert!(e.to_string().contains("title"));
        assert!(e.to_string().contains("7"));
        let e = StorageError::CorruptStats {
            table: "title".into(),
            column: "id".into(),
            reason: "NaN bound".into(),
        };
        assert!(e.to_string().contains("title.id"));
    }

    #[test]
    fn transience_classification() {
        assert!(StorageError::PageRead { table: "t".into(), page: 0 }.is_transient());
        assert!(!StorageError::UnknownTable("t".into()).is_transient());
        assert!(!StorageError::CorruptStats {
            table: "t".into(),
            column: "c".into(),
            reason: "x".into()
        }
        .is_transient());
    }
}
