//! Property tests for the storage substrate: histograms, Zipf sampling,
//! statistics, and generator invariants.

use proptest::prelude::*;
use qpseeker_storage::zipf::Zipf;
use qpseeker_storage::{Column, ColumnData, Histogram, Table, TableStats};
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Histogram selectivity is a valid CDF: monotone, clamped to [0, 1],
    /// 0 below the min and 1 above the max — on arbitrary data.
    #[test]
    fn histogram_is_a_cdf(
        mut values in proptest::collection::vec(-1e6f64..1e6, 1..500),
        probes in proptest::collection::vec(-2e6f64..2e6, 10),
        buckets in 1usize..60,
    ) {
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let h = Histogram::build(&values, buckets);
        let mut sorted_probes = probes.clone();
        sorted_probes.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut last = 0.0f64;
        for &p in &sorted_probes {
            let s = h.selectivity_lt(p);
            prop_assert!((0.0..=1.0).contains(&s), "selectivity {} out of range", s);
            prop_assert!(s + 1e-9 >= last, "CDF must be monotone: {} after {}", s, last);
            last = s;
        }
        prop_assert_eq!(h.selectivity_lt(values[0] - 1.0), 0.0);
        prop_assert_eq!(h.selectivity_lt(values[values.len() - 1] + 1.0), 1.0);
    }

    /// Histogram selectivity approximates the true empirical CDF within a
    /// bucket's resolution on arbitrary data.
    #[test]
    fn histogram_accuracy_bounded_by_bucket_width(
        values in proptest::collection::vec(0.0f64..1000.0, 200..400),
        probe in 0.0f64..1000.0,
    ) {
        let h = Histogram::build(&values, 50);
        let est = h.selectivity_lt(probe);
        let truth = values.iter().filter(|&&v| v < probe).count() as f64 / values.len() as f64;
        // Equi-depth bucket resolution is 1/50; allow 3 buckets of slack
        // (ties + interpolation).
        prop_assert!((est - truth).abs() <= 3.0 / 50.0 + 0.02,
            "est {} vs truth {}", est, truth);
    }

    /// Zipf pmf sums to one and is non-increasing in rank for any (n, s).
    #[test]
    fn zipf_pmf_valid(n in 1usize..300, s in 0.0f64..2.5) {
        let z = Zipf::new(n, s);
        let total: f64 = (0..n).map(|k| z.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
        for k in 1..n {
            prop_assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-12);
        }
    }

    /// Zipf samples always fall inside the support.
    #[test]
    fn zipf_samples_in_support(n in 1usize..100, s in 0.0f64..2.0, seed in 0u64..1000) {
        let z = Zipf::new(n, s);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    /// ANALYZE invariants: distinct counts bounded by row count, MCV
    /// frequencies in (0, 1] and descending, histogram covers min..max.
    #[test]
    fn analyze_invariants(values in proptest::collection::vec(-50i64..50, 1..300)) {
        let t = Table::new(
            "t",
            vec![Column { name: "x".into(), data: ColumnData::Int(values.clone()) }],
        );
        let stats = TableStats::analyze(&t);
        let c = stats.col("x").unwrap();
        prop_assert!(c.n_distinct >= 1 && c.n_distinct <= values.len());
        let mut last = f64::INFINITY;
        for &(_, f) in &c.mcvs {
            prop_assert!(f > 0.0 && f <= 1.0);
            prop_assert!(f <= last + 1e-12, "MCVs must be sorted by frequency");
            last = f;
        }
        let min = *values.iter().min().unwrap() as f64;
        let max = *values.iter().max().unwrap() as f64;
        prop_assert_eq!(c.histogram.min(), min);
        prop_assert_eq!(c.histogram.max(), max);
        // Equality selectivities over all distinct values sum to ~1.
        let mut distinct: Vec<i64> = values.clone();
        distinct.sort_unstable();
        distinct.dedup();
        let total: f64 = distinct.iter().map(|&v| c.selectivity_eq(v as f64)).sum();
        prop_assert!(total > 0.2 && total < 2.0, "eq selectivity mass {}", total);
    }

    /// Synthetic database generators produce valid FK references for any
    /// scale/seed combination.
    #[test]
    fn synthdb_fk_integrity(n_tables in 2usize..6, seed in 0u64..200) {
        let db = qpseeker_storage::datagen::synthdb::generate("p", n_tables, 100, seed);
        for e in &db.catalog.foreign_keys {
            let child = db.table(&e.from_table).unwrap();
            let parent_rows = db.table(&e.to_table).unwrap().n_rows() as i64;
            let col = child.col(&e.from_col);
            for i in 0..child.n_rows() {
                prop_assert!((0..parent_rows).contains(&col.data.key(i)));
            }
        }
    }
}
