//! The paper's user-defined cost model (§5.1).
//!
//! QPSeeker's training-set sampler ranks candidate plans with a "simple yet
//! effective user-defined cost model" given by six formulas. They are
//! implemented here verbatim (using estimated input cardinalities from the
//! PG-style estimator), and are used to pick the top-15% of sampled plans
//! per query.
//!
//! Formulas (as printed in the paper):
//! 1. `SeqScan      = tbl_blocks / block_size + random_page_cost + index_leaf_pages / 2 * cpu_tuple_cost`
//! 2. `IndexScan    = index_height * random_page_cost + index_leaf_pages / 2 * cpu_tuple_cost`
//! 3. `BitmapIndexScan = index_height * random_page_cost + log(tbl_blocks / block_size) * cpu_tuple_cost`
//! 4. `MergeJoin    = (|A| + log|A| + |B| + log|B| + |A| + |B|) * cpu_tuple_cost`
//! 5. `HashJoin     = (|A| + 2|B|) * cpu_tuple_cost`
//! 6. `NestedLoops  = (|A| + A_blocks + B_blocks) * cpu_tuple_cost`

use crate::cardest::CardEstimator;
use crate::plan::{JoinOp, PlanNode, ScanOp};
use crate::query::Query;
use qpseeker_storage::Database;

/// Constants used by the formulas (PG-flavored defaults).
#[derive(Debug, Clone)]
pub struct PaperCostConfig {
    pub random_page_cost: f64,
    pub cpu_tuple_cost: f64,
    pub block_size: f64,
}

impl Default for PaperCostConfig {
    fn default() -> Self {
        Self { random_page_cost: 4.0, cpu_tuple_cost: 0.01, block_size: 8192.0 }
    }
}

/// The user-defined cost model.
pub struct PaperCostModel<'a> {
    db: &'a Database,
    est: CardEstimator<'a>,
    cfg: PaperCostConfig,
}

impl<'a> PaperCostModel<'a> {
    pub fn new(db: &'a Database) -> Self {
        Self { db, est: CardEstimator::new(db), cfg: PaperCostConfig::default() }
    }

    fn index_shape(&self, table: &str) -> (f64, f64) {
        // The formulas reference "the" index of a table; use the PK index.
        self.db
            .catalog
            .index_on(table, "id")
            .map(|m| (m.height as f64, m.leaf_pages as f64))
            .unwrap_or((1.0, 1.0))
    }

    /// Cost of a scan node per the paper's formulas.
    pub fn scan_cost(&self, table: &str, op: ScanOp) -> f64 {
        let stats = self.db.table_stats(table).expect("stats exist");
        let tbl_blocks = stats.n_blocks as f64;
        let (index_height, index_leaf_pages) = self.index_shape(table);
        let c = &self.cfg;
        match op {
            ScanOp::SeqScan => {
                tbl_blocks / c.block_size
                    + c.random_page_cost
                    + index_leaf_pages / 2.0 * c.cpu_tuple_cost
            }
            ScanOp::IndexScan => {
                index_height * c.random_page_cost + index_leaf_pages / 2.0 * c.cpu_tuple_cost
            }
            ScanOp::BitmapIndexScan => {
                index_height * c.random_page_cost
                    + (tbl_blocks / c.block_size).max(1.0).ln() * c.cpu_tuple_cost
            }
        }
    }

    /// Cost of a join per the paper's formulas, given estimated input sizes
    /// and estimated block counts of the inputs.
    pub fn join_cost(
        &self,
        op: JoinOp,
        rel_a: f64,
        rel_b: f64,
        a_blocks: f64,
        b_blocks: f64,
    ) -> f64 {
        let c = &self.cfg;
        let log = |x: f64| x.max(1.0).ln();
        match op {
            JoinOp::MergeJoin => {
                (rel_a + log(rel_a) + rel_b + log(rel_b) + rel_a + rel_b) * c.cpu_tuple_cost
            }
            JoinOp::HashJoin => (rel_a + 2.0 * rel_b) * c.cpu_tuple_cost,
            JoinOp::NestedLoopJoin => (rel_a + a_blocks + b_blocks) * c.cpu_tuple_cost,
        }
    }

    /// Total cost of a plan: sum over nodes, using estimated cardinalities
    /// for intermediate inputs. Estimated blocks of an intermediate result
    /// are approximated as `rows / 100` (≈ rows·80B / 8 KiB).
    pub fn plan_cost(&self, query: &Query, plan: &PlanNode) -> f64 {
        self.node_cost(query, plan).0
    }

    /// Returns (total cost, estimated rows) of a subtree.
    fn node_cost(&self, query: &Query, node: &PlanNode) -> (f64, f64) {
        match node {
            PlanNode::Scan { alias, table, op, .. } => {
                let rows = self.est.scan_rows(query, alias);
                (self.scan_cost(table, *op), rows)
            }
            PlanNode::Join { op, left, right, preds } => {
                let (lc, lr) = self.node_cost(query, left);
                let (rc, rr) = self.node_cost(query, right);
                let sel: f64 = preds.iter().map(|p| self.est.join_selectivity(query, p)).product();
                let out = (lr * rr * sel).max(1.0);
                let blocks = |rows: f64| (rows / 100.0).max(1.0);
                let cost = self.join_cost(*op, lr, rr, blocks(lr), blocks(rr));
                (lc + rc + cost, out)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanNode;
    use crate::query::{ColRef, JoinPred, RelRef};
    use qpseeker_storage::datagen::imdb;

    fn setup() -> (Database, Query) {
        let db = imdb::generate(0.3, 5);
        let mut q = Query::new("q");
        q.relations = vec![RelRef::new("title"), RelRef::new("cast_info")];
        q.joins = vec![JoinPred {
            left: ColRef::new("cast_info", "movie_id"),
            right: ColRef::new("title", "id"),
        }];
        (db, q)
    }

    #[test]
    fn scan_formulas_follow_the_paper() {
        // The formulas as printed make IndexScan cost grow with B-tree
        // height (`height * random_page_cost`), while SeqScan pays a single
        // `random_page_cost` plus a (tiny) `blocks / block_size` term. So on
        // a height-1 table index beats seq, and on taller trees it does not.
        let (db, _) = setup();
        let m = PaperCostModel::new(&db);
        // info_type is tiny: PK index height is 1.
        assert_eq!(db.catalog.index_on("info_type", "id").unwrap().height, 1);
        assert!(
            m.scan_cost("info_type", ScanOp::IndexScan) < m.scan_cost("info_type", ScanOp::SeqScan)
        );
        // cast_info is large enough for height 2: index loses under the
        // verbatim formula.
        assert!(db.catalog.index_on("cast_info", "id").unwrap().height >= 2);
        assert!(
            m.scan_cost("cast_info", ScanOp::IndexScan) > m.scan_cost("cast_info", ScanOp::SeqScan)
        );
    }

    #[test]
    fn hash_join_cost_asymmetric_in_inputs() {
        let (db, _) = setup();
        let m = PaperCostModel::new(&db);
        // |A| + 2|B|: swapping a big B for a big A changes the cost.
        let ab = m.join_cost(JoinOp::HashJoin, 100.0, 10_000.0, 1.0, 100.0);
        let ba = m.join_cost(JoinOp::HashJoin, 10_000.0, 100.0, 100.0, 1.0);
        assert!(ab > ba);
    }

    #[test]
    fn plan_cost_positive_and_operator_sensitive() {
        let (db, q) = setup();
        let m = PaperCostModel::new(&db);
        let mk = |op| {
            PlanNode::join(
                &q,
                op,
                PlanNode::scan(&q, "title", ScanOp::SeqScan),
                PlanNode::scan(&q, "cast_info", ScanOp::SeqScan),
            )
        };
        let h = m.plan_cost(&q, &mk(JoinOp::HashJoin));
        let me = m.plan_cost(&q, &mk(JoinOp::MergeJoin));
        assert!(h > 0.0 && me > 0.0);
        assert_ne!(h, me);
        // Merge charges sort terms on both inputs, hash only 2|B|+|A|.
        assert!(me > h);
    }

    #[test]
    fn deeper_plans_cost_more() {
        let (db, _) = setup();
        let mut q = Query::new("q");
        q.relations =
            vec![RelRef::new("title"), RelRef::new("movie_info"), RelRef::new("movie_keyword")];
        q.joins = vec![
            JoinPred {
                left: ColRef::new("movie_info", "movie_id"),
                right: ColRef::new("title", "id"),
            },
            JoinPred {
                left: ColRef::new("movie_keyword", "movie_id"),
                right: ColRef::new("title", "id"),
            },
        ];
        let m = PaperCostModel::new(&db);
        let two = PlanNode::join(
            &q,
            JoinOp::HashJoin,
            PlanNode::scan(&q, "title", ScanOp::SeqScan),
            PlanNode::scan(&q, "movie_info", ScanOp::SeqScan),
        );
        let three = PlanNode::join(
            &q,
            JoinOp::HashJoin,
            two.clone(),
            PlanNode::scan(&q, "movie_keyword", ScanOp::SeqScan),
        );
        assert!(m.plan_cost(&q, &three) > m.plan_cost(&q, &two));
    }
}
