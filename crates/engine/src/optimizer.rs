//! The PostgreSQL-like cost-based optimizer (the paper's baseline system).
//!
//! Dynamic programming over left-deep join orders (System-R style) with the
//! PG cost model and histogram cardinality estimates; a greedy fallback
//! handles queries beyond the DP relation budget (PostgreSQL switches to
//! GEQO similarly). Operator choice (scan and join) is cost-based per step.
//!
//! The optimizer accepts *hints* disabling operator classes — the interface
//! Bao uses to steer it, mirroring `enable_hashjoin = off` & co.

use crate::cardest::CardEstimator;
use crate::executor::{join_charge, scan_charge, CostUnits, ScanShape, TimeWeights};
use crate::plan::{JoinOp, PlanNode, ScanOp};
use crate::query::Query;
use qpseeker_storage::Database;
use std::collections::HashMap;

/// Operator-class hints (all enabled by default). Disabling everything in a
/// class is rejected at construction.
#[derive(Debug, Clone)]
pub struct Hints {
    pub join_ops: Vec<JoinOp>,
    pub scan_ops: Vec<ScanOp>,
}

impl Default for Hints {
    fn default() -> Self {
        Self { join_ops: JoinOp::ALL.to_vec(), scan_ops: ScanOp::ALL.to_vec() }
    }
}

impl Hints {
    /// All 2^2·… combinations Bao uses: here, the 5 standard hint sets from
    /// the Bao paper shrunk to our operator vocabulary.
    pub fn bao_hint_sets() -> Vec<Hints> {
        vec![
            Hints::default(),
            Hints { join_ops: vec![JoinOp::HashJoin, JoinOp::MergeJoin], ..Default::default() },
            Hints {
                join_ops: vec![JoinOp::HashJoin, JoinOp::NestedLoopJoin],
                ..Default::default()
            },
            Hints {
                join_ops: vec![JoinOp::MergeJoin, JoinOp::NestedLoopJoin],
                ..Default::default()
            },
            Hints {
                join_ops: vec![JoinOp::HashJoin],
                scan_ops: vec![ScanOp::SeqScan, ScanOp::IndexScan],
            },
            Hints {
                join_ops: vec![JoinOp::HashJoin, JoinOp::MergeJoin],
                scan_ops: vec![ScanOp::SeqScan],
            },
        ]
    }
}

/// Maximum relations handled by exact DP before falling back to greedy.
const DP_LIMIT: usize = 14;

/// The optimizer.
pub struct PgOptimizer<'a> {
    db: &'a Database,
    est: CardEstimator<'a>,
    weights: TimeWeights,
    costs: CostUnits,
    hints: Hints,
}

#[derive(Clone)]
struct DpEntry {
    cost: f64,
    rows: f64,
    plan: PlanNode,
}

impl<'a> PgOptimizer<'a> {
    pub fn new(db: &'a Database) -> Self {
        Self::with_hints(db, Hints::default())
    }

    pub fn with_hints(db: &'a Database, hints: Hints) -> Self {
        assert!(!hints.join_ops.is_empty(), "at least one join operator must stay enabled");
        assert!(!hints.scan_ops.is_empty(), "at least one scan operator must stay enabled");
        Self {
            db,
            est: CardEstimator::new(db),
            weights: TimeWeights::default(),
            costs: CostUnits::default(),
            hints,
        }
    }

    /// Produce the cost-optimal plan for `query` under the active hints.
    ///
    /// # Panics
    /// Panics on an empty query.
    pub fn plan(&self, query: &Query) -> PlanNode {
        assert!(!query.relations.is_empty(), "cannot plan an empty query");
        if query.relations.len() == 1 {
            let alias = &query.relations[0].alias;
            return self.best_scan(query, alias).0;
        }
        if query.relations.len() <= DP_LIMIT {
            self.plan_dp(query)
        } else {
            self.plan_greedy(query)
        }
    }

    /// Best scan operator for an alias (cost, plan, estimated rows).
    fn best_scan(&self, query: &Query, alias: &str) -> (PlanNode, f64, f64) {
        let table = query.table_of(alias).expect("alias resolves");
        let stats = self.db.table_stats(table).expect("stats exist");
        let matched = self.est.scan_rows(query, alias);
        let sel = matched / stats.n_rows.max(1) as f64;
        let filters = query.filters_of(alias);
        let index_filter =
            filters.iter().find(|f| self.db.catalog.index_on(table, &f.col.column).is_some());
        let mut best: Option<(PlanNode, f64)> = None;
        for &op in &self.hints.scan_ops {
            let usable = op != ScanOp::SeqScan && index_filter.is_some();
            let (height, leaf) = match (usable, index_filter) {
                (true, Some(f)) => {
                    let m = self.db.catalog.index_on(table, &f.col.column).expect("exists");
                    (m.height as f64, m.leaf_pages as f64)
                }
                _ => (1.0, 1.0),
            };
            let shape = ScanShape {
                n_rows: stats.n_rows as f64,
                blocks: stats.n_blocks as f64,
                index_height: height,
                index_leaf_pages: leaf,
                index_usable: usable,
                n_filters: filters.len() as f64,
            };
            let (_, cost) = scan_charge(op, &shape, sel, matched, &self.weights, &self.costs);
            if best.as_ref().map(|(_, c)| cost < *c).unwrap_or(true) {
                best = Some((PlanNode::scan(query, alias, op), cost));
            }
        }
        let (plan, cost) = best.expect("at least one scan op enabled");
        (plan, cost, matched)
    }

    /// Best join operator combining two subplans (cost is the operator's own
    /// charge, not cumulative).
    fn best_join(
        &self,
        query: &Query,
        left: &PlanNode,
        right: &PlanNode,
        lrows: f64,
        rrows: f64,
    ) -> Option<(PlanNode, f64, f64)> {
        let candidate = PlanNode::join(query, self.hints.join_ops[0], left.clone(), right.clone());
        let preds = match &candidate {
            PlanNode::Join { preds, .. } if !preds.is_empty() => preds.clone(),
            _ => return None, // refuse cross products
        };
        let sel: f64 = preds.iter().map(|p| self.est.join_selectivity(query, p)).product();
        let out = (lrows * rrows * sel).max(1.0);
        let mut best: Option<(JoinOp, f64)> = None;
        for &op in &self.hints.join_ops {
            let (_, cost) = join_charge(op, lrows, rrows, out, &self.weights, &self.costs);
            if best.map(|(_, c)| cost < c).unwrap_or(true) {
                best = Some((op, cost));
            }
        }
        let (op, cost) = best.expect("at least one join op enabled");
        Some((PlanNode::join(query, op, left.clone(), right.clone()), cost, out))
    }

    /// Exact DP over left-deep orders.
    fn plan_dp(&self, query: &Query) -> PlanNode {
        let aliases: Vec<String> = query.relations.iter().map(|r| r.alias.clone()).collect();
        let n = aliases.len();
        let mut dp: HashMap<u64, DpEntry> = HashMap::new();
        for (i, a) in aliases.iter().enumerate() {
            let (plan, cost, rows) = self.best_scan(query, a);
            dp.insert(1 << i, DpEntry { cost, rows, plan });
        }
        // Enumerate subsets by population count (left-deep extension only).
        for size in 2..=n {
            let masks: Vec<u64> =
                (1u64..(1 << n)).filter(|m| m.count_ones() as usize == size).collect();
            for mask in masks {
                let mut best: Option<DpEntry> = None;
                for (i, alias) in aliases.iter().enumerate() {
                    let bit = 1u64 << i;
                    if mask & bit == 0 {
                        continue;
                    }
                    let rest = mask & !bit;
                    let Some(sub) = dp.get(&rest) else { continue };
                    let (scan, scan_cost, scan_rows) = self.best_scan(query, alias);
                    let Some((plan, join_cost, out)) =
                        self.best_join(query, &sub.plan, &scan, sub.rows, scan_rows)
                    else {
                        continue;
                    };
                    let total = sub.cost + scan_cost + join_cost;
                    if best.as_ref().map(|b| total < b.cost).unwrap_or(true) {
                        best = Some(DpEntry { cost: total, rows: out, plan });
                    }
                }
                if let Some(b) = best {
                    dp.insert(mask, b);
                }
            }
        }
        let full = (1u64 << n) - 1;
        match dp.remove(&full) {
            Some(e) => e.plan,
            // Disconnected query graph: fall back to greedy (it permits the
            // cross product as a last resort).
            None => self.plan_greedy(query),
        }
    }

    /// Greedy join ordering for very large queries.
    fn plan_greedy(&self, query: &Query) -> PlanNode {
        let mut remaining: Vec<String> = query.relations.iter().map(|r| r.alias.clone()).collect();
        // Start with the cheapest (smallest estimated) scan.
        remaining.sort_by(|a, b| {
            self.est.scan_rows(query, a).partial_cmp(&self.est.scan_rows(query, b)).expect("finite")
        });
        let first = remaining.remove(0);
        let (mut plan, _, mut rows) = self.best_scan(query, &first);
        while !remaining.is_empty() {
            let mut best: Option<(usize, PlanNode, f64, f64)> = None;
            for (idx, alias) in remaining.iter().enumerate() {
                let (scan, scan_cost, scan_rows) = self.best_scan(query, alias);
                if let Some((candidate, join_cost, out)) =
                    self.best_join(query, &plan, &scan, rows, scan_rows)
                {
                    let total = scan_cost + join_cost;
                    if best.as_ref().map(|(_, _, c, _)| total < *c).unwrap_or(true) {
                        best = Some((idx, candidate, total, out));
                    }
                }
            }
            match best {
                Some((idx, candidate, _, out)) => {
                    remaining.remove(idx);
                    plan = candidate;
                    rows = out;
                }
                None => {
                    // No connected extension: accept a cross product join to
                    // make progress (disconnected query graph).
                    let alias = remaining.remove(0);
                    let (scan, _, scan_rows) = self.best_scan(query, &alias);
                    plan = PlanNode::join(query, JoinOp::NestedLoopJoin, plan, scan);
                    rows *= scan_rows;
                }
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Executor;
    use crate::query::{ColRef, Filter, JoinPred, RelRef};
    use qpseeker_storage::datagen::imdb;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn chain_query(db: &Database, tables: &[&str]) -> Query {
        // Build a query joining the given tables along catalog FK edges.
        let mut q = Query::new("q");
        for t in tables {
            q.relations.push(RelRef::new(*t));
        }
        for i in 1..tables.len() {
            // find an FK edge between tables[i] and any earlier table
            let fk = db
                .catalog
                .foreign_keys
                .iter()
                .find(|fk| {
                    (fk.from_table == tables[i] && tables[..i].contains(&fk.to_table.as_str()))
                        || (fk.to_table == tables[i]
                            && tables[..i].contains(&fk.from_table.as_str()))
                })
                .unwrap_or_else(|| panic!("no FK edge for {}", tables[i]));
            q.joins.push(JoinPred {
                left: ColRef::new(fk.from_table.clone(), fk.from_col.clone()),
                right: ColRef::new(fk.to_table.clone(), fk.to_col.clone()),
            });
        }
        q
    }

    #[test]
    fn single_relation_plan_is_a_scan() {
        let db = imdb::generate(0.2, 5);
        let opt = PgOptimizer::new(&db);
        let mut q = Query::new("q");
        q.relations = vec![RelRef::new("title")];
        let p = opt.plan(&q);
        assert!(matches!(p, PlanNode::Scan { .. }));
    }

    #[test]
    fn plan_is_valid_and_left_deep() {
        let db = imdb::generate(0.2, 5);
        let opt = PgOptimizer::new(&db);
        let q = chain_query(&db, &["title", "movie_info", "movie_keyword", "keyword"]);
        let p = opt.plan(&q);
        assert!(p.validate(&q).is_ok());
        assert!(p.is_left_deep());
    }

    #[test]
    fn optimizer_beats_random_plans() {
        let db = imdb::generate(0.3, 5);
        let opt = PgOptimizer::new(&db);
        let ex = Executor::new(&db);
        let mut q = chain_query(&db, &["title", "movie_info", "cast_info", "movie_keyword"]);
        q.filters.push(Filter {
            col: ColRef::new("title", "production_year"),
            op: crate::query::CmpOp::Gt,
            value: 2010.0,
        });
        let chosen = ex.execute(&opt.plan(&q)).time_ms;

        // Average over random valid left-deep plans.
        let mut rng = StdRng::seed_from_u64(0);
        let mut total = 0.0;
        let mut count = 0;
        for _ in 0..8 {
            // random connected order
            let mut joined = std::collections::BTreeSet::new();
            let start = q.relations[rng.gen_range(0..q.relations.len())].alias.clone();
            joined.insert(start.clone());
            let mut plan = PlanNode::scan(&q, &start, ScanOp::SeqScan);
            while joined.len() < q.relations.len() {
                let nbrs = q.neighbors(&joined);
                let next = nbrs[rng.gen_range(0..nbrs.len())].clone();
                let scan = PlanNode::scan(&q, &next, ScanOp::SeqScan);
                let op = JoinOp::ALL[rng.gen_range(0..3)];
                plan = PlanNode::join(&q, op, plan, scan);
                joined.insert(next);
            }
            total += ex.execute(&plan).time_ms;
            count += 1;
        }
        let avg_random = total / count as f64;
        assert!(
            chosen < avg_random,
            "optimizer plan {chosen}ms should beat avg random {avg_random}ms"
        );
    }

    #[test]
    fn hints_restrict_operators() {
        let db = imdb::generate(0.2, 5);
        let hints =
            Hints { join_ops: vec![JoinOp::NestedLoopJoin], scan_ops: vec![ScanOp::SeqScan] };
        let opt = PgOptimizer::with_hints(&db, hints);
        let q = chain_query(&db, &["title", "movie_info", "movie_keyword"]);
        let p = opt.plan(&q);
        for node in p.postorder() {
            match node {
                PlanNode::Scan { op, .. } => assert_eq!(*op, ScanOp::SeqScan),
                PlanNode::Join { op, .. } => assert_eq!(*op, JoinOp::NestedLoopJoin),
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one join operator")]
    fn empty_hints_rejected() {
        let db = imdb::generate(0.05, 5);
        PgOptimizer::with_hints(&db, Hints { join_ops: vec![], scan_ops: vec![ScanOp::SeqScan] });
    }

    #[test]
    fn greedy_handles_many_relations() {
        let db = imdb::generate(0.1, 5);
        // 15 relations forces the greedy path (DP_LIMIT = 14). Build a star
        // around title plus name-side chains using all FK edges.
        let q = chain_query(
            &db,
            &[
                "title",
                "movie_info",
                "movie_info_idx",
                "cast_info",
                "movie_keyword",
                "movie_companies",
                "name",
                "char_name",
                "company_name",
                "keyword",
                "person_info",
                "aka_name",
                "info_type",
                "kind_type",
                "company_type",
            ],
        );
        assert_eq!(q.num_relations(), 15);
        let opt = PgOptimizer::new(&db);
        let p = opt.plan(&q);
        assert!(p.validate(&q).is_ok());
    }

    #[test]
    fn bao_hint_sets_are_all_valid() {
        let db = imdb::generate(0.05, 5);
        let q = chain_query(&db, &["title", "movie_info"]);
        for hints in Hints::bao_hint_sets() {
            let opt = PgOptimizer::with_hints(&db, hints);
            assert!(opt.plan(&q).validate(&q).is_ok());
        }
    }
}
