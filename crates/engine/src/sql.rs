//! A minimal SQL parser for the workload query class.
//!
//! Every query the paper evaluates is a conjunctive select-project-join
//! block; this parser accepts exactly that grammar (the same dialect
//! [`Query::to_sql`](crate::query::Query::to_sql) prints):
//!
//! ```text
//! SELECT COUNT(*) | *
//! FROM table [alias] (, table [alias])*
//! [WHERE pred (AND pred)*]
//! pred := qual.col = qual.col      -- equi-join
//!       | qual.col OP literal      -- filter, OP in {=, <, <=, >, >=}
//! ```
//!
//! Text literals are resolved to their dictionary codes against the
//! database, so parsed filters compare on the same domain the executor uses.

use crate::query::{CmpOp, ColRef, Filter, JoinPred, Query, RelRef};
use qpseeker_storage::{ColumnData, Database};

/// Parse a SQL string into a [`Query`], resolving names against `db`.
///
/// # Errors
/// Returns a human-readable message for any lexical, syntactic or semantic
/// (unknown table/column) problem.
pub fn parse(db: &Database, sql: &str) -> Result<Query, String> {
    let lower = sql.trim().trim_end_matches(';');
    let rest = strip_keyword(lower, "select").ok_or("expected SELECT")?;
    // Accept either `count(*)` or `*` as the projection.
    let rest = rest.trim_start();
    let rest = if let Some(r) = strip_keyword(rest, "count(*)") {
        r
    } else if let Some(r) = rest.strip_prefix('*') {
        r
    } else {
        return Err("expected COUNT(*) or * after SELECT".into());
    };
    let rest = strip_keyword(rest.trim_start(), "from").ok_or("expected FROM")?;

    let (from_clause, where_clause) = match split_keyword(rest, "where") {
        Some((f, w)) => (f, Some(w)),
        None => (rest, None),
    };

    let mut query = Query::new("sql");
    for item in from_clause.split(',') {
        let parts: Vec<&str> = item.split_whitespace().collect();
        let rel = match parts.as_slice() {
            [table] => RelRef::new(*table),
            [table, alias] => RelRef::aliased(*table, *alias),
            [table, kw, alias] if kw.eq_ignore_ascii_case("as") => RelRef::aliased(*table, *alias),
            _ => return Err(format!("cannot parse FROM item '{}'", item.trim())),
        };
        query.relations.push(rel);
    }
    if query.relations.is_empty() {
        return Err("FROM clause is empty".into());
    }

    if let Some(w) = where_clause {
        for pred in split_and(w) {
            parse_pred(db, &mut query, pred.trim())?;
        }
    }
    query.validate(db)?;
    Ok(query)
}

fn parse_pred(db: &Database, query: &mut Query, pred: &str) -> Result<(), String> {
    let (lhs, op, rhs) = split_comparison(pred)?;
    let left = parse_colref(lhs)
        .ok_or_else(|| format!("left side of '{pred}' is not a column reference"))?;
    if let Some(right) = parse_colref(rhs) {
        // Column vs column must be an equi-join.
        if op != CmpOp::Eq {
            return Err(format!("join predicates must use '=': '{pred}'"));
        }
        query.joins.push(JoinPred { left, right });
        return Ok(());
    }
    // Literal side: numeric or quoted text.
    let value = parse_literal(db, query, &left, rhs)?;
    query.filters.push(Filter { col: left, op, value });
    Ok(())
}

fn parse_literal(db: &Database, query: &Query, col: &ColRef, raw: &str) -> Result<f64, String> {
    let raw = raw.trim();
    if let Some(text) = raw.strip_prefix('\'').and_then(|r| r.strip_suffix('\'')) {
        // Resolve a text literal to its dictionary code.
        let table =
            query.table_of(&col.alias).ok_or_else(|| format!("unknown alias {}", col.alias))?;
        let t = db.table(table).ok_or_else(|| format!("unknown table {table}"))?;
        let c = t
            .col_idx(&col.column)
            .ok_or_else(|| format!("unknown column {}.{}", col.alias, col.column))?;
        match &t.columns[c].data {
            ColumnData::Text { dict, .. } => {
                dict.iter().position(|d| d == text).map(|code| code as f64).ok_or_else(|| {
                    format!("value '{text}' not present in {}.{}", table, col.column)
                })
            }
            _ => Err(format!("{}.{} is not a text column", col.alias, col.column)),
        }
    } else {
        raw.parse::<f64>().map_err(|_| format!("cannot parse literal '{raw}'"))
    }
}

fn parse_colref(s: &str) -> Option<ColRef> {
    let s = s.trim();
    let (alias, column) = s.split_once('.')?;
    let ident = |x: &str| {
        !x.is_empty()
            && x.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '#')
            && !x.chars().next().expect("non-empty").is_ascii_digit()
    };
    if ident(alias) && ident(column) {
        Some(ColRef::new(alias, column))
    } else {
        None
    }
}

fn split_comparison(pred: &str) -> Result<(&str, CmpOp, &str), String> {
    // Two-char operators first.
    for (tok, op) in
        [("<=", CmpOp::Le), (">=", CmpOp::Ge), ("=", CmpOp::Eq), ("<", CmpOp::Lt), (">", CmpOp::Gt)]
    {
        if let Some(i) = pred.find(tok) {
            let (l, r) = pred.split_at(i);
            return Ok((l, op, &r[tok.len()..]));
        }
    }
    Err(format!("no comparison operator in '{pred}'"))
}

fn strip_keyword<'a>(s: &'a str, kw: &str) -> Option<&'a str> {
    let s = s.trim_start();
    if s.len() >= kw.len() && s[..kw.len()].eq_ignore_ascii_case(kw) {
        Some(&s[kw.len()..])
    } else {
        None
    }
}

/// Split `s` at the first occurrence of whole-word `kw` (case-insensitive).
fn split_keyword<'a>(s: &'a str, kw: &str) -> Option<(&'a str, &'a str)> {
    let lower = s.to_ascii_lowercase();
    let mut from = 0;
    while let Some(i) = lower[from..].find(kw) {
        let i = from + i;
        let before_ok = i == 0 || !lower.as_bytes()[i - 1].is_ascii_alphanumeric();
        let after = i + kw.len();
        let after_ok = after >= lower.len() || !lower.as_bytes()[after].is_ascii_alphanumeric();
        if before_ok && after_ok {
            return Some((&s[..i], &s[after..]));
        }
        from = after;
    }
    None
}

/// Split a WHERE clause on top-level ANDs (quotes respected).
fn split_and(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let lower = s.to_ascii_lowercase();
    let bytes = lower.as_bytes();
    let mut start = 0;
    let mut in_quote = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\'' => in_quote = !in_quote,
            b'a' if !in_quote
                && i + 3 <= bytes.len()
                && &lower[i..i + 3] == "and"
                && (i == 0 || !bytes[i - 1].is_ascii_alphanumeric())
                && (i + 3 == bytes.len() || !bytes[i + 3].is_ascii_alphanumeric()) =>
            {
                out.push(&s[start..i]);
                start = i + 3;
                i += 2;
            }
            _ => {}
        }
        i += 1;
    }
    out.push(&s[start..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpseeker_storage::datagen::imdb;

    fn db() -> Database {
        imdb::generate(0.05, 3)
    }

    #[test]
    fn parses_a_join_query_with_filters() {
        let db = db();
        let q = parse(
            &db,
            "SELECT COUNT(*) FROM title, movie_info \
             WHERE movie_info.movie_id = title.id AND title.production_year > 2000",
        )
        .unwrap();
        assert_eq!(q.num_relations(), 2);
        assert_eq!(q.num_joins(), 1);
        assert_eq!(q.filters.len(), 1);
        assert_eq!(q.filters[0].op, CmpOp::Gt);
        assert_eq!(q.filters[0].value, 2000.0);
    }

    #[test]
    fn round_trips_through_to_sql() {
        let db = db();
        let original = parse(
            &db,
            "select count(*) from title, cast_info where cast_info.movie_id = title.id \
             and title.kind_id = 2",
        )
        .unwrap();
        let reparsed = parse(&db, &original.to_sql()).unwrap();
        assert_eq!(original.relations, reparsed.relations);
        assert_eq!(original.joins, reparsed.joins);
        assert_eq!(original.filters, reparsed.filters);
    }

    #[test]
    fn aliases_supported() {
        let db = db();
        let q =
            parse(&db, "SELECT * FROM title t1, title t2 WHERE t1.kind_id = t2.kind_id").unwrap();
        assert_eq!(q.relations[0].alias, "t1");
        assert_eq!(q.relations[1].table, "title");
        assert_eq!(q.num_joins(), 1);
    }

    #[test]
    fn text_literals_resolve_to_dictionary_codes() {
        let db = db();
        // Grab a real keyword value from the dictionary.
        let t = db.table("keyword").unwrap();
        let word = match &t.col("keyword").data {
            ColumnData::Text { dict, .. } => dict[3].clone(),
            _ => unreachable!(),
        };
        let q =
            parse(&db, &format!("SELECT COUNT(*) FROM keyword WHERE keyword.keyword = '{word}'"))
                .unwrap();
        assert_eq!(q.filters[0].value, 3.0);
    }

    #[test]
    fn rejects_unknown_names_and_bad_syntax() {
        let db = db();
        assert!(parse(&db, "SELECT COUNT(*) FROM nope").is_err());
        assert!(parse(&db, "SELECT COUNT(*) FROM title WHERE title.nope = 1").is_err());
        assert!(parse(&db, "SELECT COUNT(*) FROM title WHERE title.id ~ 3").is_err());
        assert!(parse(&db, "DELETE FROM title").is_err());
        assert!(
            parse(
                &db,
                "SELECT COUNT(*) FROM title, movie_info WHERE movie_info.movie_id < title.id"
            )
            .is_err(),
            "non-equi joins are rejected"
        );
    }

    #[test]
    fn and_inside_quotes_is_not_a_separator() {
        let parts = split_and("a.x = 'foo and bar' and b.y > 3");
        assert_eq!(parts.len(), 2);
        assert!(parts[0].contains("foo and bar"));
    }

    #[test]
    fn le_ge_operators() {
        let db = db();
        let q = parse(
            &db,
            "SELECT COUNT(*) FROM title WHERE title.production_year >= 1990 \
             AND title.production_year <= 2005",
        )
        .unwrap();
        assert_eq!(q.filters[0].op, CmpOp::Ge);
        assert_eq!(q.filters[1].op, CmpOp::Le);
    }
}
