//! Plan injection (the pgCuckoo role).
//!
//! The paper injects externally-constructed plans into PostgreSQL via
//! pgCuckoo, rewriting QPSeeker's output into the executor's plan language.
//! Here the same boundary exists between the neural planner and the engine:
//! a [`LeftDeepSpec`] is the planner-side description of a plan (join order +
//! operator choices) and [`LeftDeepSpec::compile`] turns it into an
//! executable [`PlanNode`], validating it against the query.

use crate::error::EngineError;
use crate::plan::{JoinOp, PlanNode, ScanOp};
use crate::query::Query;
use serde::{Deserialize, Serialize};

/// Planner-side left-deep plan description: relations in join order, each
/// with its scan operator; `joins[i]` combines the prefix with `scans[i+1]`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LeftDeepSpec {
    pub scans: Vec<(String, ScanOp)>,
    pub joins: Vec<JoinOp>,
}

impl LeftDeepSpec {
    /// Compile to an executable plan, re-attaching the query's filters and
    /// join predicates.
    pub fn compile(&self, query: &Query) -> Result<PlanNode, EngineError> {
        if self.scans.is_empty() {
            return Err(EngineError::EmptySpec);
        }
        if self.joins.len() + 1 != self.scans.len() {
            return Err(EngineError::SpecShape {
                scans: self.scans.len(),
                joins: self.joins.len(),
            });
        }
        for (alias, _) in &self.scans {
            if query.table_of(alias).is_none() {
                return Err(EngineError::SpecUnknownAlias { alias: alias.clone() });
            }
        }
        let mut plan = PlanNode::try_scan(query, &self.scans[0].0, self.scans[0].1)?;
        for (i, join_op) in self.joins.iter().enumerate() {
            let (alias, scan_op) = &self.scans[i + 1];
            let scan = PlanNode::try_scan(query, alias, *scan_op)?;
            plan = PlanNode::join(query, *join_op, plan, scan);
        }
        plan.validate(query)?;
        Ok(plan)
    }

    /// Extract the spec back from a left-deep plan (round-trip for tests and
    /// serialization of chosen plans).
    pub fn from_plan(plan: &PlanNode) -> Result<Self, EngineError> {
        if !plan.is_left_deep() {
            return Err(EngineError::NotLeftDeep);
        }
        let mut scans = Vec::new();
        let mut joins = Vec::new();
        fn walk(node: &PlanNode, scans: &mut Vec<(String, ScanOp)>, joins: &mut Vec<JoinOp>) {
            match node {
                PlanNode::Scan { alias, op, .. } => scans.push((alias.clone(), *op)),
                PlanNode::Join { op, left, right, .. } => {
                    walk(left, scans, joins);
                    walk(right, scans, joins);
                    joins.push(*op);
                }
            }
        }
        walk(plan, &mut scans, &mut joins);
        Ok(Self { scans, joins })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{ColRef, JoinPred, RelRef};

    fn query3() -> Query {
        let mut q = Query::new("q");
        q.relations = vec![RelRef::new("a"), RelRef::new("b"), RelRef::new("c")];
        q.joins = vec![
            JoinPred { left: ColRef::new("a", "id"), right: ColRef::new("b", "a_id") },
            JoinPred { left: ColRef::new("b", "id"), right: ColRef::new("c", "b_id") },
        ];
        q
    }

    #[test]
    fn compile_builds_left_deep_plan() {
        let q = query3();
        let spec = LeftDeepSpec {
            scans: vec![
                ("a".into(), ScanOp::SeqScan),
                ("b".into(), ScanOp::IndexScan),
                ("c".into(), ScanOp::SeqScan),
            ],
            joins: vec![JoinOp::HashJoin, JoinOp::MergeJoin],
        };
        let p = spec.compile(&q).unwrap();
        assert!(p.is_left_deep());
        assert_eq!(p.num_joins(), 2);
        assert!(p.validate(&q).is_ok());
    }

    #[test]
    fn round_trip() {
        let q = query3();
        let spec = LeftDeepSpec {
            scans: vec![
                ("c".into(), ScanOp::BitmapIndexScan),
                ("b".into(), ScanOp::SeqScan),
                ("a".into(), ScanOp::IndexScan),
            ],
            joins: vec![JoinOp::NestedLoopJoin, JoinOp::HashJoin],
        };
        let p = spec.compile(&q).unwrap();
        assert_eq!(LeftDeepSpec::from_plan(&p).unwrap(), spec);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let q = query3();
        let spec = LeftDeepSpec {
            scans: vec![("a".into(), ScanOp::SeqScan), ("b".into(), ScanOp::SeqScan)],
            joins: vec![],
        };
        let err = spec.compile(&q).unwrap_err();
        assert!(matches!(err, EngineError::SpecShape { scans: 2, joins: 0 }));
        assert!(err.to_string().contains("shape mismatch"));
    }

    #[test]
    fn unknown_alias_rejected() {
        let q = query3();
        let spec = LeftDeepSpec { scans: vec![("zzz".into(), ScanOp::SeqScan)], joins: vec![] };
        let err = spec.compile(&q).unwrap_err();
        assert!(matches!(err, EngineError::SpecUnknownAlias { .. }));
        assert!(err.to_string().contains("unknown alias"));
    }

    #[test]
    fn cross_product_order_rejected_by_validation() {
        let q = query3();
        // a then c is not connected (b joins them).
        let spec = LeftDeepSpec {
            scans: vec![
                ("a".into(), ScanOp::SeqScan),
                ("c".into(), ScanOp::SeqScan),
                ("b".into(), ScanOp::SeqScan),
            ],
            joins: vec![JoinOp::HashJoin, JoinOp::HashJoin],
        };
        assert!(spec.compile(&q).is_err());
    }
}
