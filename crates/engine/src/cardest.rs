//! PostgreSQL-style cardinality estimation.
//!
//! Histogram + MCV selectivity for scans, `1/max(ndv)` for equi-joins,
//! attribute-value independence throughout — the classic estimator whose
//! compounding errors on many-join, correlated queries are the baseline
//! QPSeeker is evaluated against (paper Tables 4/5: "PostgreSQL" column).

use crate::plan::PlanNode;
use crate::query::{CmpOp, Filter, JoinPred, Query};
use qpseeker_storage::{ColumnStats, Database};

/// Minimum selectivity floor (PG uses similar guards against zero estimates).
const MIN_SEL: f64 = 1e-7;

/// The estimator. Borrows the database for its ANALYZE statistics only —
/// it never looks at the data itself.
pub struct CardEstimator<'a> {
    db: &'a Database,
}

impl<'a> CardEstimator<'a> {
    pub fn new(db: &'a Database) -> Self {
        Self { db }
    }

    fn col_stats(&self, table: &str, column: &str) -> Option<&ColumnStats> {
        self.db.table_stats(table).and_then(|s| s.col(column))
    }

    /// Selectivity of one scalar filter on its base table.
    pub fn filter_selectivity(&self, table: &str, f: &Filter) -> f64 {
        let Some(cs) = self.col_stats(table, &f.col.column) else {
            return 0.33; // PG's default for unknown columns
        };
        let sel = match f.op {
            CmpOp::Eq => cs.selectivity_eq(f.value),
            CmpOp::Lt => cs.histogram.selectivity_lt(f.value),
            CmpOp::Le => cs.histogram.selectivity_lt(f.value) + cs.selectivity_eq(f.value),
            CmpOp::Gt => 1.0 - cs.histogram.selectivity_lt(f.value) - cs.selectivity_eq(f.value),
            CmpOp::Ge => 1.0 - cs.histogram.selectivity_lt(f.value),
        };
        sel.clamp(MIN_SEL, 1.0)
    }

    /// Estimated output rows of scanning `alias` with its pushed-down filters
    /// (independence across filters).
    pub fn scan_rows(&self, query: &Query, alias: &str) -> f64 {
        let table = query.table_of(alias).expect("alias resolves");
        let n = self.db.table_stats(table).map(|s| s.n_rows).unwrap_or(1) as f64;
        let sel: f64 =
            query.filters_of(alias).iter().map(|f| self.filter_selectivity(table, f)).product();
        (n * sel).max(1.0)
    }

    /// Selectivity of one equi-join predicate: `1 / max(ndv(l), ndv(r))`.
    pub fn join_selectivity(&self, query: &Query, pred: &JoinPred) -> f64 {
        let ndv = |alias: &str, column: &str| -> f64 {
            let table = query.table_of(alias).unwrap_or(alias);
            self.col_stats(table, column).map(|c| c.n_distinct as f64).unwrap_or(100.0)
        };
        let l = ndv(&pred.left.alias, &pred.left.column);
        let r = ndv(&pred.right.alias, &pred.right.column);
        (1.0 / l.max(r).max(1.0)).clamp(MIN_SEL, 1.0)
    }

    /// Estimated per-node cardinalities of a plan, in postorder. The root
    /// entry is the query cardinality estimate.
    pub fn estimate_plan(&self, query: &Query, plan: &PlanNode) -> Vec<f64> {
        let mut out = Vec::with_capacity(plan.len());
        self.estimate_node(query, plan, &mut out);
        out
    }

    fn estimate_node(&self, query: &Query, node: &PlanNode, out: &mut Vec<f64>) -> f64 {
        let rows = match node {
            PlanNode::Scan { alias, .. } => self.scan_rows(query, alias),
            PlanNode::Join { left, right, preds, .. } => {
                let l = self.estimate_node(query, left, out);
                let r = self.estimate_node(query, right, out);
                let sel: f64 = preds.iter().map(|p| self.join_selectivity(query, p)).product();
                (l * r * sel).max(1.0)
            }
        };
        out.push(rows);
        rows
    }

    /// Estimated cardinality of the whole query (via an arbitrary valid join
    /// order; the estimate is order-independent under independence).
    pub fn estimate_query(&self, query: &Query) -> f64 {
        let scans: f64 = query.relations.iter().map(|r| self.scan_rows(query, &r.alias)).product();
        let joins: f64 = query.joins.iter().map(|j| self.join_selectivity(query, j)).product();
        (scans * joins).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Executor;
    use crate::plan::{JoinOp, ScanOp};
    use crate::query::{ColRef, RelRef};
    use qpseeker_storage::datagen::imdb;

    fn db() -> Database {
        imdb::generate(0.3, 17)
    }

    #[test]
    fn unfiltered_scan_estimate_is_exact() {
        let db = db();
        let est = CardEstimator::new(&db);
        let mut q = Query::new("q");
        q.relations = vec![RelRef::new("title")];
        let rows = est.scan_rows(&q, "title");
        assert_eq!(rows as usize, db.table("title").unwrap().n_rows());
    }

    #[test]
    fn range_filter_estimate_close_to_truth() {
        let db = db();
        let est = CardEstimator::new(&db);
        let mut q = Query::new("q");
        q.relations = vec![RelRef::new("title")];
        q.filters.push(Filter {
            col: ColRef::new("title", "production_year"),
            op: CmpOp::Gt,
            value: 2000.0,
        });
        let estimate = est.scan_rows(&q, "title");
        let ex = Executor::new(&db);
        let truth = ex.execute(&PlanNode::scan(&q, "title", ScanOp::SeqScan)).rows as f64;
        let qerr = (estimate / truth).max(truth / estimate);
        assert!(qerr < 1.5, "single-column histogram estimate should be tight: q-err {qerr}");
    }

    #[test]
    fn correlated_filters_are_overestimated_wrongly() {
        // kind_id and episode_nr are correlated by construction; the
        // independence assumption must produce a visible error. This is a
        // *feature* of the substrate (it gives QPSeeker something to beat).
        let db = db();
        let est = CardEstimator::new(&db);
        let ex = Executor::new(&db);
        // episode_nr ≥ 45 only arises (mod-50 wraparound of the noise) for
        // kind_id = 0..3, so pairing it with kind_id = 1..  is *possible* but
        // far rarer than independence predicts; pairing with a kind far from
        // the wraparound region is (nearly) contradictory.
        let mut q = Query::new("q");
        q.relations = vec![RelRef::new("title")];
        q.filters.push(Filter { col: ColRef::new("title", "kind_id"), op: CmpOp::Eq, value: 6.0 });
        q.filters.push(Filter {
            col: ColRef::new("title", "episode_nr"),
            op: CmpOp::Ge,
            value: 45.0,
        });
        let estimate = est.scan_rows(&q, "title");
        let truth = ex.execute(&PlanNode::scan(&q, "title", ScanOp::SeqScan)).rows.max(1) as f64;
        let qerr = (estimate / truth).max(truth / estimate);
        assert!(qerr > 1.5, "correlated predicates should defeat independence: q-err {qerr}");
    }

    #[test]
    fn join_estimate_within_order_of_magnitude_for_fk_join() {
        let db = db();
        let est = CardEstimator::new(&db);
        let ex = Executor::new(&db);
        let mut q = Query::new("q");
        q.relations = vec![RelRef::new("title"), RelRef::new("cast_info")];
        q.joins = vec![JoinPred {
            left: ColRef::new("cast_info", "movie_id"),
            right: ColRef::new("title", "id"),
        }];
        let plan = PlanNode::join(
            &q,
            JoinOp::HashJoin,
            PlanNode::scan(&q, "title", ScanOp::SeqScan),
            PlanNode::scan(&q, "cast_info", ScanOp::SeqScan),
        );
        let est_rows = *est.estimate_plan(&q, &plan).last().unwrap();
        let truth = ex.execute(&plan).rows as f64;
        let qerr = (est_rows / truth).max(truth / est_rows);
        assert!(qerr < 3.0, "plain FK join estimate q-err {qerr}");
    }

    #[test]
    fn estimate_plan_is_postordered_and_order_invariant_at_root() {
        let db = db();
        let est = CardEstimator::new(&db);
        let mut q = Query::new("q");
        q.relations =
            vec![RelRef::new("title"), RelRef::new("movie_info"), RelRef::new("movie_keyword")];
        q.joins = vec![
            JoinPred {
                left: ColRef::new("movie_info", "movie_id"),
                right: ColRef::new("title", "id"),
            },
            JoinPred {
                left: ColRef::new("movie_keyword", "movie_id"),
                right: ColRef::new("title", "id"),
            },
        ];
        let p1 = PlanNode::join(
            &q,
            JoinOp::HashJoin,
            PlanNode::join(
                &q,
                JoinOp::HashJoin,
                PlanNode::scan(&q, "title", ScanOp::SeqScan),
                PlanNode::scan(&q, "movie_info", ScanOp::SeqScan),
            ),
            PlanNode::scan(&q, "movie_keyword", ScanOp::SeqScan),
        );
        let p2 = PlanNode::join(
            &q,
            JoinOp::HashJoin,
            PlanNode::join(
                &q,
                JoinOp::HashJoin,
                PlanNode::scan(&q, "title", ScanOp::SeqScan),
                PlanNode::scan(&q, "movie_keyword", ScanOp::SeqScan),
            ),
            PlanNode::scan(&q, "movie_info", ScanOp::SeqScan),
        );
        let e1 = est.estimate_plan(&q, &p1);
        let e2 = est.estimate_plan(&q, &p2);
        assert_eq!(e1.len(), 5);
        let rel =
            (e1.last().unwrap() / e2.last().unwrap()).max(e2.last().unwrap() / e1.last().unwrap());
        assert!(rel < 1.01, "root estimate must be join-order invariant, ratio {rel}");
        // And matches the closed-form query estimate.
        let eq = est.estimate_query(&q);
        assert!((eq / e1.last().unwrap()).max(e1.last().unwrap() / eq) < 1.01);
    }

    #[test]
    fn selectivities_are_clamped() {
        let db = db();
        let est = CardEstimator::new(&db);
        let f =
            Filter { col: ColRef::new("title", "production_year"), op: CmpOp::Eq, value: -99999.0 };
        let s = est.filter_selectivity("title", &f);
        assert!((MIN_SEL..=1.0).contains(&s));
        let g = Filter { col: ColRef::new("title", "production_year"), op: CmpOp::Lt, value: 1e12 };
        assert!(est.filter_selectivity("title", &g) <= 1.0);
    }
}
