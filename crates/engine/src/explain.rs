//! EXPLAIN: per-node optimizer estimates.
//!
//! The paper feeds the DB optimizer's EXPLAIN estimates (cardinality, cost,
//! and a time estimate) into each leaf of the plan encoder (§4.2, node input
//! (a)). This module produces those estimates by combining the PG-style
//! cardinality estimator with the shared cost/time charge formulas.

use crate::cardest::CardEstimator;
use crate::executor::{join_charge, scan_charge, CostUnits, ScanShape, TimeWeights};
use crate::plan::{PhysicalOp, PlanNode};
use crate::query::Query;
use qpseeker_storage::Database;
use serde::{Deserialize, Serialize};

/// One node's EXPLAIN estimates (cumulative cost/time like PostgreSQL).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct NodeEstimate {
    pub rows: f64,
    pub cost: f64,
    pub time_ms: f64,
}

/// EXPLAIN estimator over a database's statistics.
pub struct Explain<'a> {
    db: &'a Database,
    est: CardEstimator<'a>,
    weights: TimeWeights,
    costs: CostUnits,
}

impl<'a> Explain<'a> {
    pub fn new(db: &'a Database) -> Self {
        Self {
            db,
            est: CardEstimator::new(db),
            weights: TimeWeights::default(),
            costs: CostUnits::default(),
        }
    }

    /// Per-node estimates in postorder; the last entry is the whole plan.
    pub fn explain(&self, query: &Query, plan: &PlanNode) -> Vec<NodeEstimate> {
        let mut out = Vec::with_capacity(plan.len());
        self.node(query, plan, &mut out);
        out
    }

    fn node(&self, query: &Query, node: &PlanNode, out: &mut Vec<NodeEstimate>) -> NodeEstimate {
        let e = match node {
            PlanNode::Scan { alias, table, op, filters } => {
                let stats = self.db.table_stats(table).expect("stats exist");
                let matched = self.est.scan_rows(query, alias);
                let sel = matched / stats.n_rows.max(1) as f64;
                let index_filter = filters
                    .iter()
                    .find(|f| self.db.catalog.index_on(table, &f.col.column).is_some());
                let (height, leaf_pages, usable) = match index_filter {
                    Some(f) => {
                        let m =
                            self.db.catalog.index_on(table, &f.col.column).expect("checked above");
                        (m.height as f64, m.leaf_pages as f64, true)
                    }
                    None => (1.0, 1.0, false),
                };
                let shape = ScanShape {
                    n_rows: stats.n_rows as f64,
                    blocks: stats.n_blocks as f64,
                    index_height: height,
                    index_leaf_pages: leaf_pages,
                    index_usable: usable,
                    n_filters: filters.len() as f64,
                };
                let (time_ms, cost) =
                    scan_charge(*op, &shape, sel, matched, &self.weights, &self.costs);
                NodeEstimate { rows: matched, cost, time_ms }
            }
            PlanNode::Join { op, left, right, preds } => {
                let l = self.node(query, left, out);
                let r = self.node(query, right, out);
                let sel: f64 = preds.iter().map(|p| self.est.join_selectivity(query, p)).product();
                let rows = (l.rows * r.rows * sel).max(1.0);
                let (t, c) = join_charge(*op, l.rows, r.rows, rows, &self.weights, &self.costs);
                NodeEstimate { rows, cost: l.cost + r.cost + c, time_ms: l.time_ms + r.time_ms + t }
            }
        };
        out.push(e);
        e
    }

    /// Total plan estimate (root node).
    pub fn plan_estimate(&self, query: &Query, plan: &PlanNode) -> NodeEstimate {
        *self.explain(query, plan).last().expect("plan is non-empty")
    }

    /// EXPLAIN ANALYZE: per-node (estimate, actual) pairs, postorder —
    /// executes the plan once with the virtual-time executor and lines its
    /// profiles up with the optimizer estimates.
    pub fn explain_analyze(
        &self,
        query: &Query,
        plan: &PlanNode,
    ) -> Vec<(NodeEstimate, crate::executor::NodeProfile)> {
        let estimates = self.explain(query, plan);
        let actual = crate::executor::Executor::new(self.db).execute(plan);
        estimates.into_iter().zip(actual.nodes).collect()
    }

    /// EXPLAIN text output (for debugging and the examples).
    pub fn pretty(&self, query: &Query, plan: &PlanNode) -> String {
        let ests = self.explain(query, plan);
        let mut lines = Vec::new();
        // Reconstruct postorder index for each node.
        let nodes = plan.postorder();
        for (node, est) in nodes.iter().zip(&ests) {
            let label: String = match node {
                PlanNode::Scan { alias, op, .. } => format!("{} on {alias}", PhysicalOp::Scan(*op)),
                PlanNode::Join { op, .. } => format!("{}", PhysicalOp::Join(*op)),
            };
            lines.push(format!(
                "{label}  (rows={:.0} cost={:.2} time={:.3}ms)",
                est.rows, est.cost, est.time_ms
            ));
        }
        lines.join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Executor;
    use crate::plan::{JoinOp, ScanOp};
    use crate::query::{ColRef, JoinPred, RelRef};
    use qpseeker_storage::datagen::imdb;

    fn setup() -> (Database, Query, PlanNode) {
        let db = imdb::generate(0.3, 5);
        let mut q = Query::new("q");
        q.relations = vec![RelRef::new("title"), RelRef::new("movie_info")];
        q.joins = vec![JoinPred {
            left: ColRef::new("movie_info", "movie_id"),
            right: ColRef::new("title", "id"),
        }];
        let plan = PlanNode::join(
            &q,
            JoinOp::HashJoin,
            PlanNode::scan(&q, "title", ScanOp::SeqScan),
            PlanNode::scan(&q, "movie_info", ScanOp::SeqScan),
        );
        (db, q, plan)
    }

    #[test]
    fn estimates_are_positive_and_cumulative() {
        let (db, q, plan) = setup();
        let ex = Explain::new(&db);
        let ests = ex.explain(&q, &plan);
        assert_eq!(ests.len(), 3);
        for e in &ests {
            assert!(e.rows >= 1.0);
            assert!(e.cost > 0.0);
            assert!(e.time_ms > 0.0);
        }
        assert!(ests[2].cost >= ests[0].cost + ests[1].cost);
    }

    #[test]
    fn estimated_time_tracks_actual_time_on_simple_plans() {
        // On uncorrelated FK joins the estimator should land within a small
        // factor of the virtual-time executor (they share charge formulas).
        let (db, q, plan) = setup();
        let expl = Explain::new(&db);
        let est = expl.plan_estimate(&q, &plan);
        let actual = Executor::new(&db).execute(&plan);
        let ratio = (est.time_ms / actual.time_ms).max(actual.time_ms / est.time_ms);
        assert!(ratio < 3.0, "estimate {} vs actual {}", est.time_ms, actual.time_ms);
    }

    #[test]
    fn pretty_lists_every_node() {
        let (db, q, plan) = setup();
        let s = Explain::new(&db).pretty(&q, &plan);
        assert_eq!(s.lines().count(), 3);
        assert!(s.contains("HashJoin"));
        assert!(s.contains("rows="));
    }
}

#[cfg(test)]
mod analyze_tests {
    use super::*;
    use crate::plan::{JoinOp, ScanOp};
    use crate::query::{ColRef, JoinPred, RelRef};
    use qpseeker_storage::datagen::imdb;

    #[test]
    fn explain_analyze_pairs_estimates_with_actuals() {
        let db = imdb::generate(0.1, 5);
        let mut q = Query::new("q");
        q.relations = vec![RelRef::new("title"), RelRef::new("movie_info")];
        q.joins = vec![JoinPred {
            left: ColRef::new("movie_info", "movie_id"),
            right: ColRef::new("title", "id"),
        }];
        let plan = PlanNode::join(
            &q,
            JoinOp::HashJoin,
            PlanNode::scan(&q, "title", ScanOp::SeqScan),
            PlanNode::scan(&q, "movie_info", ScanOp::SeqScan),
        );
        let pairs = Explain::new(&db).explain_analyze(&q, &plan);
        assert_eq!(pairs.len(), 3);
        // Unfiltered scans: estimate equals actual exactly.
        assert_eq!(pairs[0].0.rows as u64, pairs[0].1.rows);
        assert_eq!(pairs[1].0.rows as u64, pairs[1].1.rows);
        // FK join estimate lands within 3x of actual on this clean case.
        let (est, act) = (&pairs[2].0, &pairs[2].1);
        let ratio = (est.rows / act.rows.max(1) as f64).max(act.rows.max(1) as f64 / est.rows);
        assert!(ratio < 3.0, "join estimate ratio {ratio}");
    }
}
