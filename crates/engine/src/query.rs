//! Logical query representation.
//!
//! A query is a conjunctive select-project-join block, which is the query
//! class of every workload the paper evaluates (MSCN Synthetic, JOB, Stack):
//! a set of (aliased) relations `T_q`, a set of equi-join predicates `J_q`
//! and a set of scalar filter predicates `P_q` — exactly the three sets the
//! QPSeeker query encoder consumes.

use qpseeker_storage::Database;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};

/// A column of a (possibly aliased) relation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ColRef {
    /// Alias of the relation inside this query.
    pub alias: String,
    pub column: String,
}

impl ColRef {
    pub fn new(alias: impl Into<String>, column: impl Into<String>) -> Self {
        Self { alias: alias.into(), column: column.into() }
    }
}

/// Comparison operators supported by filters (the MSCN feature space).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CmpOp {
    Eq,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    #[inline]
    pub fn eval(self, lhs: f64, rhs: f64) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }

    /// All operators (used by workload generators).
    pub const ALL: [CmpOp; 5] = [CmpOp::Eq, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge];
}

/// A scalar filter `alias.column OP value`. Text comparisons are expressed
/// against dictionary codes (the workload generator picks codes of real
/// values, so equality semantics are preserved).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Filter {
    pub col: ColRef,
    pub op: CmpOp,
    pub value: f64,
}

/// An equi-join predicate `left = right`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct JoinPred {
    pub left: ColRef,
    pub right: ColRef,
}

impl JoinPred {
    /// True when this predicate connects the two aliases (either direction).
    pub fn connects(&self, a: &str, b: &str) -> bool {
        (self.left.alias == a && self.right.alias == b)
            || (self.left.alias == b && self.right.alias == a)
    }

    /// True when this predicate touches `alias` on either side.
    pub fn touches(&self, alias: &str) -> bool {
        self.left.alias == alias || self.right.alias == alias
    }
}

/// A relation reference with its alias.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RelRef {
    pub table: String,
    pub alias: String,
}

impl RelRef {
    pub fn new(table: impl Into<String>) -> Self {
        let t = table.into();
        Self { alias: t.clone(), table: t }
    }

    pub fn aliased(table: impl Into<String>, alias: impl Into<String>) -> Self {
        Self { table: table.into(), alias: alias.into() }
    }
}

/// A conjunctive SPJ query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// Stable identifier (template id + instance id for workload queries).
    pub id: String,
    pub relations: Vec<RelRef>,
    pub joins: Vec<JoinPred>,
    pub filters: Vec<Filter>,
}

impl Query {
    pub fn new(id: impl Into<String>) -> Self {
        Self { id: id.into(), relations: Vec::new(), joins: Vec::new(), filters: Vec::new() }
    }

    pub fn num_joins(&self) -> usize {
        self.joins.len()
    }

    pub fn num_relations(&self) -> usize {
        self.relations.len()
    }

    /// Base table behind an alias.
    pub fn table_of(&self, alias: &str) -> Option<&str> {
        self.relations.iter().find(|r| r.alias == alias).map(|r| r.table.as_str())
    }

    /// Filters applying to a specific alias.
    pub fn filters_of(&self, alias: &str) -> Vec<&Filter> {
        self.filters.iter().filter(|f| f.col.alias == alias).collect()
    }

    /// Join predicates between a set of aliases and one new alias.
    pub fn joins_between(&self, joined: &BTreeSet<String>, new_alias: &str) -> Vec<&JoinPred> {
        self.joins
            .iter()
            .filter(|j| {
                (joined.contains(&j.left.alias) && j.right.alias == new_alias)
                    || (joined.contains(&j.right.alias) && j.left.alias == new_alias)
            })
            .collect()
    }

    /// Aliases adjacent to the given alias set in the join graph.
    pub fn neighbors(&self, joined: &BTreeSet<String>) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for r in &self.relations {
            if joined.contains(&r.alias) {
                continue;
            }
            if self.joins.iter().any(|j| {
                (joined.contains(&j.left.alias) && j.right.alias == r.alias)
                    || (joined.contains(&j.right.alias) && j.left.alias == r.alias)
            }) {
                out.push(r.alias.clone());
            }
        }
        out
    }

    /// True when the join graph spans all relations (no cross products needed).
    pub fn is_connected(&self) -> bool {
        if self.relations.len() <= 1 {
            return true;
        }
        let mut seen: BTreeSet<String> = BTreeSet::new();
        seen.insert(self.relations[0].alias.clone());
        loop {
            let next = self.neighbors(&seen);
            if next.is_empty() {
                break;
            }
            for a in next {
                seen.insert(a);
            }
        }
        seen.len() == self.relations.len()
    }

    /// Check referential integrity of the query against a database schema.
    pub fn validate(&self, db: &Database) -> Result<(), String> {
        let mut seen_aliases: HashMap<&str, &str> = HashMap::new();
        for r in &self.relations {
            if db.catalog.table_meta(&r.table).is_none() {
                return Err(format!("unknown table {}", r.table));
            }
            if seen_aliases.insert(r.alias.as_str(), r.table.as_str()).is_some() {
                return Err(format!("duplicate alias {}", r.alias));
            }
        }
        let col_ok = |c: &ColRef| -> Result<(), String> {
            let table = seen_aliases
                .get(c.alias.as_str())
                .ok_or_else(|| format!("unknown alias {}", c.alias))?;
            let meta = db.catalog.table_meta(table).expect("validated above");
            if !meta.columns.iter().any(|m| m.name == c.column) {
                return Err(format!("unknown column {}.{}", c.alias, c.column));
            }
            Ok(())
        };
        for j in &self.joins {
            col_ok(&j.left)?;
            col_ok(&j.right)?;
        }
        for f in &self.filters {
            col_ok(&f.col)?;
        }
        Ok(())
    }

    /// Render as SQL-ish text (debugging / EXPLAIN output).
    pub fn to_sql(&self) -> String {
        let from: Vec<String> = self
            .relations
            .iter()
            .map(|r| {
                if r.alias == r.table {
                    r.table.clone()
                } else {
                    format!("{} {}", r.table, r.alias)
                }
            })
            .collect();
        let mut preds: Vec<String> = self
            .joins
            .iter()
            .map(|j| {
                format!("{}.{} = {}.{}", j.left.alias, j.left.column, j.right.alias, j.right.column)
            })
            .collect();
        for f in &self.filters {
            let op = match f.op {
                CmpOp::Eq => "=",
                CmpOp::Lt => "<",
                CmpOp::Le => "<=",
                CmpOp::Gt => ">",
                CmpOp::Ge => ">=",
            };
            preds.push(format!("{}.{} {} {}", f.col.alias, f.col.column, op, f.value));
        }
        let mut sql = format!("SELECT COUNT(*) FROM {}", from.join(", "));
        if !preds.is_empty() {
            sql.push_str(" WHERE ");
            sql.push_str(&preds.join(" AND "));
        }
        sql
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpseeker_storage::datagen::imdb;

    fn two_join_query() -> Query {
        let mut q = Query::new("q1");
        q.relations =
            vec![RelRef::new("title"), RelRef::new("movie_info"), RelRef::new("cast_info")];
        q.joins = vec![
            JoinPred {
                left: ColRef::new("movie_info", "movie_id"),
                right: ColRef::new("title", "id"),
            },
            JoinPred {
                left: ColRef::new("cast_info", "movie_id"),
                right: ColRef::new("title", "id"),
            },
        ];
        q.filters = vec![Filter {
            col: ColRef::new("title", "production_year"),
            op: CmpOp::Gt,
            value: 2000.0,
        }];
        q
    }

    #[test]
    fn accessors() {
        let q = two_join_query();
        assert_eq!(q.num_relations(), 3);
        assert_eq!(q.num_joins(), 2);
        assert_eq!(q.table_of("title"), Some("title"));
        assert_eq!(q.filters_of("title").len(), 1);
        assert_eq!(q.filters_of("movie_info").len(), 0);
    }

    #[test]
    fn join_graph_navigation() {
        let q = two_join_query();
        let mut joined = BTreeSet::new();
        joined.insert("movie_info".to_string());
        let n = q.neighbors(&joined);
        assert_eq!(n, vec!["title".to_string()]);
        joined.insert("title".to_string());
        assert_eq!(q.neighbors(&joined), vec!["cast_info".to_string()]);
        assert_eq!(q.joins_between(&joined, "cast_info").len(), 1);
    }

    #[test]
    fn connectivity() {
        let mut q = two_join_query();
        assert!(q.is_connected());
        q.joins.pop();
        assert!(!q.is_connected());
        let single = Query::new("s");
        assert!(single.is_connected());
    }

    #[test]
    fn validation_against_imdb() {
        let db = imdb::generate(0.05, 1);
        let q = two_join_query();
        assert!(q.validate(&db).is_ok());

        let mut bad = two_join_query();
        bad.filters[0].col.column = "nonexistent".into();
        assert!(bad.validate(&db).unwrap_err().contains("unknown column"));

        let mut bad2 = two_join_query();
        bad2.relations.push(RelRef::new("not_a_table"));
        assert!(bad2.validate(&db).unwrap_err().contains("unknown table"));

        let mut bad3 = two_join_query();
        bad3.relations.push(RelRef::new("title"));
        assert!(bad3.validate(&db).unwrap_err().contains("duplicate alias"));
    }

    #[test]
    fn self_join_via_aliases_validates() {
        let db = imdb::generate(0.05, 1);
        let mut q = Query::new("self");
        q.relations = vec![RelRef::aliased("title", "t1"), RelRef::aliased("title", "t2")];
        q.joins = vec![JoinPred {
            left: ColRef::new("t1", "kind_id"),
            right: ColRef::new("t2", "kind_id"),
        }];
        assert!(q.validate(&db).is_ok());
        assert!(q.is_connected());
    }

    #[test]
    fn sql_rendering() {
        let q = two_join_query();
        let sql = q.to_sql();
        assert!(sql.starts_with("SELECT COUNT(*) FROM title, movie_info, cast_info"));
        assert!(sql.contains("movie_info.movie_id = title.id"));
        assert!(sql.contains("title.production_year > 2000"));
    }

    #[test]
    fn cmp_op_semantics() {
        assert!(CmpOp::Eq.eval(1.0, 1.0));
        assert!(CmpOp::Lt.eval(1.0, 2.0));
        assert!(CmpOp::Le.eval(2.0, 2.0));
        assert!(CmpOp::Gt.eval(3.0, 2.0));
        assert!(CmpOp::Ge.eval(2.0, 2.0));
        assert!(!CmpOp::Gt.eval(2.0, 2.0));
    }
}
