//! Typed engine errors.
//!
//! Middle link of the workspace error chain: wraps [`StorageError`] from
//! below and is wrapped by `qpseeker-core`'s error above. Display texts
//! keep the exact phrases the original stringly-typed APIs used
//! ("plan covers …", "cross product", "shape mismatch", …) so messages stay
//! stable across the conversion.

use qpseeker_storage::StorageError;
use std::fmt;

/// Errors raised by planning, plan compilation and execution.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A storage-layer failure (unknown table, page read, corrupt stats).
    Storage(StorageError),
    /// A query has no relation bound to `alias`.
    UnknownAlias { query: String, alias: String },
    /// A plan spec references an alias the query does not define.
    SpecUnknownAlias { alias: String },
    /// The plan's relation set differs from the query's.
    PlanCoverage { plan: Vec<String>, query: Vec<String> },
    /// A relation appears more than once in the plan.
    DuplicateRelation,
    /// A join node carries no predicate in a connected query.
    CrossProduct,
    /// A [`crate::inject::LeftDeepSpec`] with no scans.
    EmptySpec,
    /// Scan/join counts of a spec are inconsistent.
    SpecShape { scans: usize, joins: usize },
    /// The plan is not left-deep where a left-deep plan is required.
    NotLeftDeep,
    /// An injected row budget was exhausted mid-execution (admission
    /// control abort; transient — a retry may draw a different schedule).
    RowBudgetExceeded { processed: u64, budget: u64 },
}

impl EngineError {
    /// Whether a retry is worthwhile (mirrors [`StorageError::is_transient`]).
    pub fn is_transient(&self) -> bool {
        match self {
            EngineError::Storage(e) => e.is_transient(),
            EngineError::RowBudgetExceeded { .. } => true,
            _ => false,
        }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Storage(e) => write!(f, "{e}"),
            EngineError::UnknownAlias { query, alias } => {
                write!(f, "query {query} has no alias {alias}")
            }
            EngineError::SpecUnknownAlias { alias } => {
                write!(f, "spec references unknown alias {alias}")
            }
            EngineError::PlanCoverage { plan, query } => {
                write!(f, "plan covers {plan:?} but query has {query:?}")
            }
            EngineError::DuplicateRelation => {
                f.write_str("a relation appears more than once in the plan")
            }
            EngineError::CrossProduct => {
                f.write_str("join node without predicates (cross product)")
            }
            EngineError::EmptySpec => f.write_str("empty plan spec"),
            EngineError::SpecShape { scans, joins } => write!(
                f,
                "spec shape mismatch: {scans} scans need {} joins, got {joins}",
                scans.saturating_sub(1)
            ),
            EngineError::NotLeftDeep => f.write_str("plan is not left-deep"),
            EngineError::RowBudgetExceeded { processed, budget } => {
                write!(f, "row budget exceeded: processed {processed} rows, budget {budget}")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_legacy_message_phrases() {
        let cover = EngineError::PlanCoverage {
            plan: vec!["a".into()],
            query: vec!["a".into(), "b".into()],
        };
        assert!(cover.to_string().contains("plan covers"));
        assert!(EngineError::CrossProduct.to_string().contains("cross product"));
        assert!(EngineError::SpecShape { scans: 2, joins: 0 }
            .to_string()
            .contains("shape mismatch"));
        assert!(EngineError::SpecUnknownAlias { alias: "z".into() }
            .to_string()
            .contains("unknown alias z"));
        assert!(EngineError::NotLeftDeep.to_string().contains("not left-deep"));
    }

    #[test]
    fn storage_errors_lift_with_source() {
        use std::error::Error;
        let e: EngineError = StorageError::UnknownTable("ghost".into()).into();
        assert!(e.to_string().contains("ghost"));
        assert!(e.source().is_some());
    }

    #[test]
    fn transience_follows_the_wrapped_error() {
        let transient: EngineError = StorageError::PageRead { table: "t".into(), page: 1 }.into();
        assert!(transient.is_transient());
        assert!(EngineError::RowBudgetExceeded { processed: 10, budget: 5 }.is_transient());
        assert!(!EngineError::CrossProduct.is_transient());
    }
}
