//! Physical execution plans.
//!
//! A plan is a binary tree: leaves scan base relations (sequential, index,
//! or bitmap index scans) and internal nodes join two subplans (hash, merge,
//! or nested-loop joins) — the operator vocabulary of §5.1 of the paper.

use crate::error::EngineError;
use crate::query::{Filter, JoinPred, Query};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Scan operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScanOp {
    SeqScan,
    IndexScan,
    BitmapIndexScan,
}

impl ScanOp {
    pub const ALL: [ScanOp; 3] = [ScanOp::SeqScan, ScanOp::IndexScan, ScanOp::BitmapIndexScan];
}

/// Join operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JoinOp {
    HashJoin,
    MergeJoin,
    NestedLoopJoin,
}

impl JoinOp {
    pub const ALL: [JoinOp; 3] = [JoinOp::HashJoin, JoinOp::MergeJoin, JoinOp::NestedLoopJoin];
}

/// Unified physical-operator tag (the one-hot operator vocabulary used by
/// the plan encoder: 3 scans + 3 joins = 6 physical operators).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PhysicalOp {
    Scan(ScanOp),
    Join(JoinOp),
}

impl PhysicalOp {
    /// Stable index into the one-hot operator vocabulary.
    pub fn one_hot_index(self) -> usize {
        match self {
            PhysicalOp::Scan(ScanOp::SeqScan) => 0,
            PhysicalOp::Scan(ScanOp::IndexScan) => 1,
            PhysicalOp::Scan(ScanOp::BitmapIndexScan) => 2,
            PhysicalOp::Join(JoinOp::HashJoin) => 3,
            PhysicalOp::Join(JoinOp::MergeJoin) => 4,
            PhysicalOp::Join(JoinOp::NestedLoopJoin) => 5,
        }
    }

    /// Size of the operator vocabulary.
    pub const COUNT: usize = 6;
}

impl fmt::Display for PhysicalOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PhysicalOp::Scan(ScanOp::SeqScan) => "SeqScan",
            PhysicalOp::Scan(ScanOp::IndexScan) => "IndexScan",
            PhysicalOp::Scan(ScanOp::BitmapIndexScan) => "BitmapIndexScan",
            PhysicalOp::Join(JoinOp::HashJoin) => "HashJoin",
            PhysicalOp::Join(JoinOp::MergeJoin) => "MergeJoin",
            PhysicalOp::Join(JoinOp::NestedLoopJoin) => "NestedLoop",
        };
        f.write_str(s)
    }
}

/// A physical plan tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlanNode {
    Scan {
        alias: String,
        table: String,
        op: ScanOp,
        /// Filters pushed down to this scan.
        filters: Vec<Filter>,
    },
    Join {
        op: JoinOp,
        left: Box<PlanNode>,
        right: Box<PlanNode>,
        /// Equi-join predicates evaluated at this node.
        preds: Vec<JoinPred>,
    },
}

impl PlanNode {
    /// Build a scan leaf for `alias` of `query`, pushing down its filters.
    ///
    /// # Panics
    /// Panics when `query` has no relation bound to `alias`; use
    /// [`PlanNode::try_scan`] on library paths that must not panic.
    pub fn scan(query: &Query, alias: &str, op: ScanOp) -> PlanNode {
        Self::try_scan(query, alias, op).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`PlanNode::scan`].
    pub fn try_scan(query: &Query, alias: &str, op: ScanOp) -> Result<PlanNode, EngineError> {
        let table = query
            .table_of(alias)
            .ok_or_else(|| EngineError::UnknownAlias {
                query: query.id.clone(),
                alias: alias.to_string(),
            })?
            .to_string();
        Ok(PlanNode::Scan {
            alias: alias.to_string(),
            table,
            op,
            filters: query.filters_of(alias).into_iter().cloned().collect(),
        })
    }

    /// Join two subplans, attaching every join predicate of `query` that
    /// connects them.
    pub fn join(query: &Query, op: JoinOp, left: PlanNode, right: PlanNode) -> PlanNode {
        let left_aliases = left.aliases();
        let right_aliases = right.aliases();
        let preds = query
            .joins
            .iter()
            .filter(|j| {
                (left_aliases.contains(&j.left.alias) && right_aliases.contains(&j.right.alias))
                    || (left_aliases.contains(&j.right.alias)
                        && right_aliases.contains(&j.left.alias))
            })
            .cloned()
            .collect();
        PlanNode::Join { op, left: Box::new(left), right: Box::new(right), preds }
    }

    pub fn physical_op(&self) -> PhysicalOp {
        match self {
            PlanNode::Scan { op, .. } => PhysicalOp::Scan(*op),
            PlanNode::Join { op, .. } => PhysicalOp::Join(*op),
        }
    }

    /// All aliases under this node.
    pub fn aliases(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_aliases(&mut out);
        out
    }

    fn collect_aliases(&self, out: &mut BTreeSet<String>) {
        match self {
            PlanNode::Scan { alias, .. } => {
                out.insert(alias.clone());
            }
            PlanNode::Join { left, right, .. } => {
                left.collect_aliases(out);
                right.collect_aliases(out);
            }
        }
    }

    /// Number of nodes in the tree.
    pub fn len(&self) -> usize {
        match self {
            PlanNode::Scan { .. } => 1,
            PlanNode::Join { left, right, .. } => 1 + left.len() + right.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of join nodes.
    pub fn num_joins(&self) -> usize {
        match self {
            PlanNode::Scan { .. } => 0,
            PlanNode::Join { left, right, .. } => 1 + left.num_joins() + right.num_joins(),
        }
    }

    /// Tree height (a single scan has height 1).
    pub fn height(&self) -> usize {
        match self {
            PlanNode::Scan { .. } => 1,
            PlanNode::Join { left, right, .. } => 1 + left.height().max(right.height()),
        }
    }

    /// A plan is left-deep when every right child is a scan.
    pub fn is_left_deep(&self) -> bool {
        match self {
            PlanNode::Scan { .. } => true,
            PlanNode::Join { left, right, .. } => {
                matches!(**right, PlanNode::Scan { .. }) && left.is_left_deep()
            }
        }
    }

    /// Post-order traversal (children before parents) — the evaluation order
    /// of both the executor and the plan encoder.
    pub fn postorder(&self) -> Vec<&PlanNode> {
        let mut out = Vec::with_capacity(self.len());
        self.postorder_into(&mut out);
        out
    }

    fn postorder_into<'a>(&'a self, out: &mut Vec<&'a PlanNode>) {
        if let PlanNode::Join { left, right, .. } = self {
            left.postorder_into(out);
            right.postorder_into(out);
        }
        out.push(self);
    }

    /// Validate this plan implements `query`: every relation appears exactly
    /// once and every join node has at least one predicate (no accidental
    /// cross products) unless the query itself is a cross product.
    pub fn validate(&self, query: &Query) -> Result<(), EngineError> {
        let aliases = self.aliases();
        let expected: BTreeSet<String> = query.relations.iter().map(|r| r.alias.clone()).collect();
        if aliases != expected {
            return Err(EngineError::PlanCoverage {
                plan: aliases.into_iter().collect(),
                query: expected.into_iter().collect(),
            });
        }
        let mut count = 0usize;
        self.count_scans(&mut count);
        if count != query.relations.len() {
            return Err(EngineError::DuplicateRelation);
        }
        if query.is_connected() {
            for node in self.postorder() {
                if let PlanNode::Join { preds, .. } = node {
                    if preds.is_empty() {
                        return Err(EngineError::CrossProduct);
                    }
                }
            }
        }
        Ok(())
    }

    fn count_scans(&self, count: &mut usize) {
        match self {
            PlanNode::Scan { .. } => *count += 1,
            PlanNode::Join { left, right, .. } => {
                left.count_scans(count);
                right.count_scans(count);
            }
        }
    }

    /// Render an EXPLAIN-style indented tree.
    pub fn pretty(&self) -> String {
        let mut s = String::new();
        self.pretty_into(0, &mut s);
        s
    }

    fn pretty_into(&self, depth: usize, out: &mut String) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        match self {
            PlanNode::Scan { alias, op, filters, .. } => {
                out.push_str(&format!(
                    "{} on {alias}{}\n",
                    PhysicalOp::Scan(*op),
                    if filters.is_empty() {
                        String::new()
                    } else {
                        format!(" ({} filters)", filters.len())
                    }
                ));
            }
            PlanNode::Join { op, left, right, .. } => {
                out.push_str(&format!("{}\n", PhysicalOp::Join(*op)));
                left.pretty_into(depth + 1, out);
                right.pretty_into(depth + 1, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{ColRef, RelRef};

    fn query3() -> Query {
        let mut q = Query::new("q");
        q.relations = vec![RelRef::new("a"), RelRef::new("b"), RelRef::new("c")];
        q.joins = vec![
            JoinPred { left: ColRef::new("a", "id"), right: ColRef::new("b", "a_id") },
            JoinPred { left: ColRef::new("b", "id"), right: ColRef::new("c", "b_id") },
        ];
        q
    }

    fn left_deep_plan(q: &Query) -> PlanNode {
        let sa = PlanNode::scan(q, "a", ScanOp::SeqScan);
        let sb = PlanNode::scan(q, "b", ScanOp::IndexScan);
        let sc = PlanNode::scan(q, "c", ScanOp::SeqScan);
        let ab = PlanNode::join(q, JoinOp::HashJoin, sa, sb);
        PlanNode::join(q, JoinOp::MergeJoin, ab, sc)
    }

    #[test]
    fn structure_metrics() {
        let q = query3();
        let p = left_deep_plan(&q);
        assert_eq!(p.len(), 5);
        assert_eq!(p.num_joins(), 2);
        assert_eq!(p.height(), 3);
        assert!(p.is_left_deep());
        assert_eq!(p.aliases().len(), 3);
    }

    #[test]
    fn join_builder_attaches_correct_predicates() {
        let q = query3();
        let p = left_deep_plan(&q);
        if let PlanNode::Join { preds, .. } = &p {
            assert_eq!(preds.len(), 1);
            assert!(preds[0].connects("b", "c"));
        } else {
            panic!("root must be a join");
        }
    }

    #[test]
    fn bushy_plan_detected() {
        let mut q = query3();
        q.relations.push(RelRef::new("d"));
        q.joins.push(JoinPred { left: ColRef::new("c", "id"), right: ColRef::new("d", "c_id") });
        let sa = PlanNode::scan(&q, "a", ScanOp::SeqScan);
        let sb = PlanNode::scan(&q, "b", ScanOp::SeqScan);
        let sc = PlanNode::scan(&q, "c", ScanOp::SeqScan);
        let sd = PlanNode::scan(&q, "d", ScanOp::SeqScan);
        let ab = PlanNode::join(&q, JoinOp::HashJoin, sa, sb);
        let cd = PlanNode::join(&q, JoinOp::HashJoin, sc, sd);
        let bushy = PlanNode::join(&q, JoinOp::HashJoin, ab, cd);
        assert!(!bushy.is_left_deep());
        assert!(bushy.validate(&q).is_ok());
    }

    #[test]
    fn postorder_visits_children_first() {
        let q = query3();
        let p = left_deep_plan(&q);
        let order = p.postorder();
        assert_eq!(order.len(), 5);
        // Last is the root.
        assert_eq!(order[4].physical_op(), PhysicalOp::Join(JoinOp::MergeJoin));
        // First two are scans.
        assert!(matches!(order[0], PlanNode::Scan { .. }));
        assert!(matches!(order[1], PlanNode::Scan { .. }));
    }

    #[test]
    fn validation_rejects_missing_relation() {
        let q = query3();
        let sa = PlanNode::scan(&q, "a", ScanOp::SeqScan);
        let sb = PlanNode::scan(&q, "b", ScanOp::SeqScan);
        let ab = PlanNode::join(&q, JoinOp::HashJoin, sa, sb);
        let err = ab.validate(&q).unwrap_err();
        assert!(matches!(err, EngineError::PlanCoverage { .. }));
        assert!(err.to_string().contains("plan covers"));
    }

    #[test]
    fn validation_rejects_cross_product_order() {
        let q = query3();
        // a ⋈ c has no predicate: building that join first is a cross product.
        let sa = PlanNode::scan(&q, "a", ScanOp::SeqScan);
        let sc = PlanNode::scan(&q, "c", ScanOp::SeqScan);
        let sb = PlanNode::scan(&q, "b", ScanOp::SeqScan);
        let ac = PlanNode::join(&q, JoinOp::HashJoin, sa, sc);
        let p = PlanNode::join(&q, JoinOp::HashJoin, ac, sb);
        assert_eq!(p.validate(&q).unwrap_err(), EngineError::CrossProduct);
    }

    #[test]
    fn try_scan_reports_unknown_alias() {
        let q = query3();
        let err = PlanNode::try_scan(&q, "zzz", ScanOp::SeqScan).unwrap_err();
        assert!(matches!(err, EngineError::UnknownAlias { .. }));
        assert!(err.to_string().contains("no alias zzz"));
    }

    #[test]
    fn one_hot_indices_are_unique_and_dense() {
        let mut seen = std::collections::HashSet::new();
        for s in ScanOp::ALL {
            seen.insert(PhysicalOp::Scan(s).one_hot_index());
        }
        for j in JoinOp::ALL {
            seen.insert(PhysicalOp::Join(j).one_hot_index());
        }
        assert_eq!(seen.len(), PhysicalOp::COUNT);
        assert!(seen.iter().all(|&i| i < PhysicalOp::COUNT));
    }

    #[test]
    fn pretty_output_contains_operators() {
        let q = query3();
        let p = left_deep_plan(&q);
        let s = p.pretty();
        assert!(s.contains("MergeJoin"));
        assert!(s.contains("HashJoin"));
        assert!(s.contains("IndexScan on b"));
    }
}
