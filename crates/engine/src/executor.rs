//! Plan executor with deterministic virtual-time accounting.
//!
//! The executor computes **exact** results (true per-node cardinalities) and
//! charges each operator a *virtual time* derived from the work it performs
//! (pages touched, tuples processed, comparisons, hash operations). Virtual
//! time replaces the paper's wall-clock measurements on PostgreSQL: it is
//! reproducible bit-for-bit from the workload seed while preserving the
//! property the evaluation needs — bad join orders and bad operator choices
//! are orders of magnitude slower than good ones (a nested-loop join over
//! two large inputs is charged `|L|·|R|` comparisons, exactly like the real
//! thing would pay).
//!
//! Semantics note: join/scan *outputs* are computed with hash/index lookups
//! regardless of the chosen physical operator; the operator choice affects
//! only the accounting. This keeps ground-truth generation fast while
//! keeping the cost/runtime figures faithful to each operator's work model.

use crate::error::EngineError;
use crate::plan::{JoinOp, PhysicalOp, PlanNode, ScanOp};
use crate::query::{CmpOp, Filter};
use qpseeker_storage::{
    ColumnData, Database, FaultConfig, FaultInjector, Table, TableStats, BLOCK_SIZE,
};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Virtual-time weights, in milliseconds per unit of work. Calibrated to
/// PostgreSQL-like ratios (random I/O 4x sequential; per-tuple CPU three
/// orders of magnitude below page I/O).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeWeights {
    pub seq_page_ms: f64,
    pub random_page_ms: f64,
    pub tuple_cpu_ms: f64,
    pub predicate_ms: f64,
    pub hash_build_ms: f64,
    pub hash_probe_ms: f64,
    pub compare_ms: f64,
    pub output_ms: f64,
    /// Extra charge per tuple once an operator's working set exceeds
    /// `work_mem_tuples` (spill simulation; the JOB-light "memory-demanding"
    /// regressions come from here).
    pub spill_ms: f64,
    pub work_mem_tuples: u64,
}

impl Default for TimeWeights {
    fn default() -> Self {
        Self {
            seq_page_ms: 0.02,
            random_page_ms: 0.08,
            tuple_cpu_ms: 0.0004,
            predicate_ms: 0.0001,
            hash_build_ms: 0.0008,
            hash_probe_ms: 0.0005,
            compare_ms: 0.0002,
            output_ms: 0.0002,
            spill_ms: 0.002,
            work_mem_tuples: 65_536,
        }
    }
}

/// PostgreSQL cost-unit constants (the "computational cost" target values).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostUnits {
    pub seq_page_cost: f64,
    pub random_page_cost: f64,
    pub cpu_tuple_cost: f64,
    pub cpu_operator_cost: f64,
    pub cpu_index_tuple_cost: f64,
}

impl Default for CostUnits {
    fn default() -> Self {
        Self {
            seq_page_cost: 1.0,
            random_page_cost: 4.0,
            cpu_tuple_cost: 0.01,
            cpu_operator_cost: 0.0025,
            cpu_index_tuple_cost: 0.005,
        }
    }
}

/// Profile of one executed plan node (postorder position matches
/// [`PlanNode::postorder`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeProfile {
    pub op: PhysicalOp,
    /// True output cardinality.
    pub rows: u64,
    /// Cumulative PG cost units of the subtree rooted here.
    pub cost: f64,
    /// Cumulative virtual runtime (ms) of the subtree rooted here.
    pub time_ms: f64,
}

/// Result of executing a full plan.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExecutionResult {
    /// Root output cardinality.
    pub rows: u64,
    /// Total PG cost units.
    pub cost: f64,
    /// Total virtual runtime in milliseconds.
    pub time_ms: f64,
    /// Per-node profiles in postorder.
    pub nodes: Vec<NodeProfile>,
    /// True when an intermediate result exceeded the row cap and execution
    /// was aborted (charged a penalty, like a statement timeout).
    pub timed_out: bool,
    /// Peak simulated operator memory, in tuples.
    pub peak_mem_tuples: u64,
}

/// Access-path shape parameters for the scan charge formulas.
#[derive(Debug, Clone, Copy)]
pub struct ScanShape {
    pub n_rows: f64,
    pub blocks: f64,
    pub index_height: f64,
    pub index_leaf_pages: f64,
    /// True when the chosen operator can actually use an index.
    pub index_usable: bool,
    pub n_filters: f64,
}

/// Virtual-time and cost-unit charge for a scan that matches `matched` rows
/// (selectivity `sel`). Shared between the executor (actual counts) and the
/// EXPLAIN estimator (estimated counts).
pub fn scan_charge(
    op: ScanOp,
    shape: &ScanShape,
    sel: f64,
    matched: f64,
    w: &TimeWeights,
    c: &CostUnits,
) -> (f64, f64) {
    let n = shape.n_rows;
    let blocks = shape.blocks;
    let nf = shape.n_filters;
    let (height, leaf_pages) = (shape.index_height, shape.index_leaf_pages);
    match (op, shape.index_usable) {
        (ScanOp::SeqScan, _) | (_, false) => {
            // Full sweep (an index scan without a usable index degrades to a
            // full index traversal, slightly worse than seq).
            let degrade = if op == ScanOp::SeqScan { 1.0 } else { 1.3 };
            (
                degrade * (blocks * w.seq_page_ms + n * (w.tuple_cpu_ms + nf * w.predicate_ms)),
                degrade
                    * (blocks * c.seq_page_cost
                        + n * (c.cpu_tuple_cost + nf * c.cpu_operator_cost)),
            )
        }
        (ScanOp::IndexScan, true) => (
            height * w.random_page_ms
                + (sel * leaf_pages).max(1.0) * w.random_page_ms
                + matched * w.random_page_ms * 0.05 // heap fetches, clustered-ish
                + matched * (w.tuple_cpu_ms + (nf - 1.0).max(0.0) * w.predicate_ms),
            height * c.random_page_cost
                + (sel * leaf_pages).max(1.0) * c.random_page_cost
                + matched * (c.cpu_index_tuple_cost + c.cpu_tuple_cost),
        ),
        (ScanOp::BitmapIndexScan, true) => (
            height * w.random_page_ms
                + (sel * leaf_pages).max(1.0) * w.random_page_ms
                + (sel * blocks).max(1.0) * w.seq_page_ms // sorted heap sweep
                + matched * (w.tuple_cpu_ms + (nf - 1.0).max(0.0) * w.predicate_ms),
            height * c.random_page_cost
                + (sel * leaf_pages).max(1.0) * c.random_page_cost
                + (sel * blocks).max(1.0) * c.seq_page_cost
                + matched * (c.cpu_index_tuple_cost + c.cpu_tuple_cost),
        ),
    }
}

/// Virtual-time and cost-unit charge for one join operator given input and
/// output cardinalities.
pub fn join_charge(
    op: JoinOp,
    nl: f64,
    nr: f64,
    nout: f64,
    w: &TimeWeights,
    c: &CostUnits,
) -> (f64, f64) {
    let spill = |n: f64| -> f64 {
        if n > w.work_mem_tuples as f64 {
            (n - w.work_mem_tuples as f64) * w.spill_ms
        } else {
            0.0
        }
    };
    match op {
        JoinOp::HashJoin => (
            nr * w.hash_build_ms + nl * w.hash_probe_ms + nout * w.output_ms + spill(nr),
            nr * (c.cpu_operator_cost * 1.5) + nl * c.cpu_operator_cost + nout * c.cpu_tuple_cost,
        ),
        JoinOp::MergeJoin => {
            let sort = |n: f64| if n > 1.0 { n * n.log2() } else { 0.0 };
            (
                (sort(nl) + sort(nr)) * w.compare_ms
                    + (nl + nr) * w.compare_ms
                    + nout * w.output_ms
                    + spill(nl + nr),
                (sort(nl) + sort(nr) + nl + nr) * c.cpu_operator_cost + nout * c.cpu_tuple_cost,
            )
        }
        JoinOp::NestedLoopJoin => (
            nl * nr * w.compare_ms + nout * w.output_ms,
            nl * nr * c.cpu_operator_cost + nout * c.cpu_tuple_cost,
        ),
    }
}

/// Sorted (key, row) index over one column.
struct BtreeIndex {
    entries: Vec<(i64, u32)>,
}

impl BtreeIndex {
    fn build(data: &ColumnData) -> Self {
        let mut entries: Vec<(i64, u32)> =
            (0..data.len()).map(|i| (data.key(i), i as u32)).collect();
        entries.sort_unstable();
        Self { entries }
    }

    /// Rows whose key satisfies `op value` (value compared as integer key).
    fn lookup(&self, op: CmpOp, value: f64) -> Vec<u32> {
        let v = value;
        match op {
            CmpOp::Eq => {
                let k = v as i64;
                if (k as f64) != v {
                    return Vec::new(); // non-integer equality over int keys
                }
                let lo = self.entries.partition_point(|&(key, _)| key < k);
                let hi = self.entries.partition_point(|&(key, _)| key <= k);
                self.entries[lo..hi].iter().map(|&(_, r)| r).collect()
            }
            CmpOp::Lt => {
                let hi = self.entries.partition_point(|&(key, _)| (key as f64) < v);
                self.entries[..hi].iter().map(|&(_, r)| r).collect()
            }
            CmpOp::Le => {
                let hi = self.entries.partition_point(|&(key, _)| (key as f64) <= v);
                self.entries[..hi].iter().map(|&(_, r)| r).collect()
            }
            CmpOp::Gt => {
                let lo = self.entries.partition_point(|&(key, _)| (key as f64) <= v);
                self.entries[lo..].iter().map(|&(_, r)| r).collect()
            }
            CmpOp::Ge => {
                let lo = self.entries.partition_point(|&(key, _)| (key as f64) < v);
                self.entries[lo..].iter().map(|&(_, r)| r).collect()
            }
        }
    }
}

/// Intermediate result: a bag of composite tuples, each holding one base-row
/// id per alias in the subtree. Stored flattened for memory density.
struct Chunk {
    aliases: Vec<String>,
    width: usize,
    rows: Vec<u32>,
}

impl Chunk {
    fn n_tuples(&self) -> usize {
        self.rows.len().checked_div(self.width).unwrap_or(0)
    }

    fn alias_pos(&self, alias: &str) -> usize {
        self.aliases
            .iter()
            .position(|a| a == alias)
            .unwrap_or_else(|| panic!("chunk has no alias {alias}"))
    }

    #[inline]
    fn base_row(&self, tuple: usize, pos: usize) -> u32 {
        self.rows[tuple * self.width + pos]
    }
}

/// Why execution stopped early: either the row cap tripped (reported as a
/// timed-out [`ExecutionResult`], like a statement timeout) or a typed
/// fault surfaced (reported as an `Err` from [`Executor::try_execute`]).
enum Interrupt {
    RowCap(f64),
    Fault(EngineError),
}

/// The plan executor.
pub struct Executor<'a> {
    db: &'a Database,
    weights: TimeWeights,
    costs: CostUnits,
    indexes: HashMap<(String, String), BtreeIndex>,
    faults: Option<FaultInjector>,
    /// Abort threshold for intermediate results.
    pub max_intermediate: usize,
}

impl<'a> Executor<'a> {
    /// Build an executor (materializes B-tree indexes declared in the catalog).
    ///
    /// # Panics
    /// Panics when the catalog declares an index on a missing table; use
    /// [`Executor::try_new`] on library paths that must not panic.
    pub fn new(db: &'a Database) -> Self {
        Self::with_weights(db, TimeWeights::default(), CostUnits::default())
    }

    /// Fallible variant of [`Executor::new`].
    pub fn try_new(db: &'a Database) -> Result<Self, EngineError> {
        Self::try_with_weights(db, TimeWeights::default(), CostUnits::default())
    }

    pub fn with_weights(db: &'a Database, weights: TimeWeights, costs: CostUnits) -> Self {
        Self::try_with_weights(db, weights, costs).unwrap_or_else(|e| panic!("{e}"))
    }

    pub fn try_with_weights(
        db: &'a Database,
        weights: TimeWeights,
        costs: CostUnits,
    ) -> Result<Self, EngineError> {
        let mut indexes = HashMap::new();
        for im in &db.catalog.indexes {
            let table = db.try_table(&im.table)?;
            let col = table.col(&im.column);
            indexes.insert((im.table.clone(), im.column.clone()), BtreeIndex::build(&col.data));
        }
        Ok(Self { db, weights, costs, indexes, faults: None, max_intermediate: 3_000_000 })
    }

    /// Arm deterministic fault injection: page-read failures, latency
    /// spikes, corrupted statistics and row-budget aborts, per `cfg`.
    /// Execute such plans through [`Executor::try_execute`].
    pub fn with_faults(mut self, cfg: FaultConfig) -> Self {
        self.faults = Some(FaultInjector::new(cfg));
        self
    }

    /// Execute a plan, returning exact cardinalities and virtual-time/cost
    /// profiles for every node.
    ///
    /// # Panics
    /// Panics on a typed execution fault (unknown table, injected fault);
    /// fault-injected executors should use [`Executor::try_execute`].
    pub fn execute(&self, plan: &PlanNode) -> ExecutionResult {
        self.try_execute(plan).unwrap_or_else(|e| panic!("plan execution failed: {e}"))
    }

    /// Execute a plan, surfacing typed faults instead of panicking. A row
    /// cap overflow is still reported as a timed-out `Ok` result (it mimics
    /// a statement timeout, which PostgreSQL also reports in-band).
    pub fn try_execute(&self, plan: &PlanNode) -> Result<ExecutionResult, EngineError> {
        let mut nodes = Vec::with_capacity(plan.len());
        let mut peak_mem = 0u64;
        let mut rows_processed = 0u64;
        match self.exec_node(plan, &mut nodes, &mut peak_mem, &mut rows_processed) {
            Ok(chunk) => {
                let last = nodes.last().expect("at least one node profile");
                Ok(ExecutionResult {
                    rows: chunk.n_tuples() as u64,
                    cost: last.cost,
                    time_ms: last.time_ms,
                    nodes,
                    timed_out: false,
                    peak_mem_tuples: peak_mem,
                })
            }
            Err(Interrupt::RowCap(partial_time)) => {
                // Timed out: charge everything so far plus a large penalty,
                // mimicking a statement timeout on an exploding plan.
                let penalty = partial_time.max(1.0) * 10.0;
                let (rows, cost) = nodes
                    .last()
                    .map(|n| (n.rows, n.cost))
                    .unwrap_or((self.max_intermediate as u64, 0.0));
                Ok(ExecutionResult {
                    rows,
                    cost: cost * 10.0,
                    time_ms: partial_time + penalty,
                    nodes,
                    timed_out: true,
                    peak_mem_tuples: peak_mem,
                })
            }
            Err(Interrupt::Fault(e)) => Err(e),
        }
    }

    /// Charge `n` rows against the injected row budget, if one is armed.
    fn charge_rows(&self, processed: &mut u64, n: u64) -> Result<(), Interrupt> {
        *processed += n;
        if let Some(budget) = self.faults.as_ref().and_then(|f| f.row_budget()) {
            if *processed > budget {
                return Err(Interrupt::Fault(EngineError::RowBudgetExceeded {
                    processed: *processed,
                    budget,
                }));
            }
        }
        Ok(())
    }

    fn exec_node(
        &self,
        node: &PlanNode,
        profiles: &mut Vec<NodeProfile>,
        peak_mem: &mut u64,
        rows_processed: &mut u64,
    ) -> Result<Chunk, Interrupt> {
        match node {
            PlanNode::Scan { alias, table, op, filters } => {
                let t = self.db.try_table(table).map_err(|e| Interrupt::Fault(e.into()))?;
                let (rows, time, cost) =
                    self.exec_scan(t, *op, filters).map_err(Interrupt::Fault)?;
                let n = rows.len();
                self.charge_rows(rows_processed, n as u64)?;
                profiles.push(NodeProfile {
                    op: PhysicalOp::Scan(*op),
                    rows: n as u64,
                    cost,
                    time_ms: time,
                });
                Ok(Chunk { aliases: vec![alias.clone()], width: 1, rows })
            }
            PlanNode::Join { op, left, right, preds } => {
                let l = self.exec_node(left, profiles, peak_mem, rows_processed)?;
                let lprof_idx = profiles.len() - 1;
                let r = self.exec_node(right, profiles, peak_mem, rows_processed)?;
                let rprof_idx = profiles.len() - 1;
                let child_time = profiles[lprof_idx].time_ms + profiles[rprof_idx].time_ms;
                let child_cost = profiles[lprof_idx].cost + profiles[rprof_idx].cost;

                let out = self.join_chunks(&l, &r, preds, peak_mem);
                let (nl, nr) = (l.n_tuples() as f64, r.n_tuples() as f64);
                let nout = out.n_tuples() as u64;
                let (mut self_time, self_cost) =
                    join_charge(*op, nl, nr, nout as f64, &self.weights, &self.costs);
                if let Some(fi) = &self.faults {
                    self_time += fi.latency_spike_ms(&format!("join:{}", profiles.len()));
                }
                self.charge_rows(rows_processed, nout)?;
                profiles.push(NodeProfile {
                    op: PhysicalOp::Join(*op),
                    rows: nout,
                    cost: child_cost + self_cost,
                    time_ms: child_time + self_time,
                });
                if out.n_tuples() > self.max_intermediate {
                    return Err(Interrupt::RowCap(child_time + self_time));
                }
                Ok(out)
            }
        }
    }

    /// Execute a scan: compute matching base-row ids and charge the chosen
    /// access path.
    fn exec_scan(
        &self,
        table: &Table,
        op: ScanOp,
        filters: &[Filter],
    ) -> Result<(Vec<u32>, f64, f64), EngineError> {
        if let Some(fi) = &self.faults {
            fi.page_read(&table.name)?;
        }
        let n = table.n_rows();
        let base_stats = self.db.try_table_stats(&table.name)?;
        let corrupted;
        let stats: &TableStats = match &self.faults {
            Some(fi) if fi.corrupts_stats(&table.name) => {
                corrupted = fi.corrupted_stats(base_stats);
                &corrupted
            }
            _ => base_stats,
        };
        stats.validate()?;
        let blocks = stats.n_blocks as f64;
        let w = &self.weights;
        let c = &self.costs;

        // Pick an index-driven filter when the operator wants one.
        let index_filter = if op != ScanOp::SeqScan {
            filters.iter().enumerate().find(|(_, f)| {
                self.indexes.contains_key(&(table.name.clone(), f.col.column.clone()))
            })
        } else {
            None
        };

        let (candidates, idx_used): (Vec<u32>, Option<&Filter>) = match index_filter {
            Some((_, f)) => {
                let idx = &self.indexes[&(table.name.clone(), f.col.column.clone())];
                (idx.lookup(f.op, f.value), Some(f))
            }
            None => ((0..n as u32).collect(), None),
        };

        // Apply the remaining filters.
        let remaining: Vec<&Filter> = filters
            .iter()
            .filter(|f| match idx_used {
                Some(u) => !std::ptr::eq(*f, u),
                None => true,
            })
            .collect();
        let mut out = Vec::with_capacity(candidates.len());
        let cols: Vec<(&ColumnData, &Filter)> =
            remaining.iter().map(|f| (&table.col(&f.col.column).data, *f)).collect();
        for &row in &candidates {
            let mut keep = true;
            for (data, f) in &cols {
                if !f.op.eval(data.num(row as usize), f.value) {
                    keep = false;
                    break;
                }
            }
            if keep {
                out.push(row);
            }
        }

        let matched = candidates.len() as f64;
        let meta = self
            .db
            .catalog
            .index_on(&table.name, idx_used.map(|f| f.col.column.as_str()).unwrap_or("id"));
        let (height, leaf_pages) =
            meta.map(|m| (m.height as f64, m.leaf_pages as f64)).unwrap_or((1.0, 1.0));
        let sel = if n > 0 { matched / n as f64 } else { 0.0 };
        let shape = ScanShape {
            n_rows: n as f64,
            blocks,
            index_height: height,
            index_leaf_pages: leaf_pages,
            index_usable: idx_used.is_some(),
            n_filters: filters.len() as f64,
        };
        let (mut time, cost) = scan_charge(op, &shape, sel, matched, w, c);
        if let Some(fi) = &self.faults {
            time += fi.latency_spike_ms(&table.name);
        }
        Ok((out, time, cost))
    }

    /// Compute the exact join result (hash-based, operator-independent).
    fn join_chunks(
        &self,
        l: &Chunk,
        r: &Chunk,
        preds: &[crate::query::JoinPred],
        peak_mem: &mut u64,
    ) -> Chunk {
        let mut aliases = l.aliases.clone();
        aliases.extend(r.aliases.iter().cloned());
        let width = l.width + r.width;

        if preds.is_empty() {
            // Cross product (only reachable for disconnected queries).
            let cap = self.max_intermediate + 1;
            let mut rows = Vec::new();
            'outer: for i in 0..l.n_tuples() {
                for j in 0..r.n_tuples() {
                    for p in 0..l.width {
                        rows.push(l.base_row(i, p));
                    }
                    for p in 0..r.width {
                        rows.push(r.base_row(j, p));
                    }
                    if rows.len() / width > cap {
                        break 'outer;
                    }
                }
            }
            return Chunk { aliases, width, rows };
        }

        // Resolve each predicate to (side, alias position, column data).
        struct Key<'d> {
            l_pos: usize,
            l_data: &'d ColumnData,
            r_pos: usize,
            r_data: &'d ColumnData,
        }
        let keys: Vec<Key> = preds
            .iter()
            .map(|p| {
                let (lref, rref) = if l.aliases.contains(&p.left.alias) {
                    (&p.left, &p.right)
                } else {
                    (&p.right, &p.left)
                };
                let lt = self.alias_table(&lref.alias);
                let rt = self.alias_table(&rref.alias);
                Key {
                    l_pos: l.alias_pos(&lref.alias),
                    l_data: &lt.col(&lref.column).data,
                    r_pos: r.alias_pos(&rref.alias),
                    r_data: &rt.col(&rref.column).data,
                }
            })
            .collect();

        // Hash the smaller input on the composite key.
        let (build_is_left, build, probe) =
            if l.n_tuples() <= r.n_tuples() { (true, l, r) } else { (false, r, l) };
        *peak_mem = (*peak_mem).max(build.n_tuples() as u64);

        let build_key = |t: usize| -> u64 {
            let mut h = 0xcbf29ce484222325u64;
            for k in &keys {
                let v = if build_is_left {
                    k.l_data.key(build.base_row(t, k.l_pos) as usize)
                } else {
                    k.r_data.key(build.base_row(t, k.r_pos) as usize)
                };
                h = (h ^ v as u64).wrapping_mul(0x100000001b3);
            }
            h
        };
        let probe_key = |t: usize| -> u64 {
            let mut h = 0xcbf29ce484222325u64;
            for k in &keys {
                let v = if build_is_left {
                    k.r_data.key(probe.base_row(t, k.r_pos) as usize)
                } else {
                    k.l_data.key(probe.base_row(t, k.l_pos) as usize)
                };
                h = (h ^ v as u64).wrapping_mul(0x100000001b3);
            }
            h
        };

        let mut ht: HashMap<u64, Vec<u32>> = HashMap::with_capacity(build.n_tuples());
        for t in 0..build.n_tuples() {
            ht.entry(build_key(t)).or_default().push(t as u32);
        }

        let verify = |lt: usize, rt: usize| -> bool {
            keys.iter().all(|k| {
                k.l_data.key(l.base_row(lt, k.l_pos) as usize)
                    == k.r_data.key(r.base_row(rt, k.r_pos) as usize)
            })
        };

        let cap = self.max_intermediate + 1;
        let mut rows = Vec::new();
        'probe: for t in 0..probe.n_tuples() {
            if let Some(matches) = ht.get(&probe_key(t)) {
                for &b in matches {
                    let (lt, rt) = if build_is_left { (b as usize, t) } else { (t, b as usize) };
                    if verify(lt, rt) {
                        for p in 0..l.width {
                            rows.push(l.base_row(lt, p));
                        }
                        for p in 0..r.width {
                            rows.push(r.base_row(rt, p));
                        }
                        if rows.len() / width > cap {
                            break 'probe;
                        }
                    }
                }
            }
        }
        Chunk { aliases, width, rows }
    }

    fn alias_table(&self, alias: &str) -> &Table {
        // Alias resolution: chunk aliases are query aliases; the underlying
        // table is found through the catalog (aliases equal table names) or
        // by stripping a suffix (aliased tables are named `<table>#<n>`
        // by the workload generator convention, or resolved via the query).
        if let Some(t) = self.db.table(alias) {
            return t;
        }
        let base = alias.split('#').next().expect("non-empty alias");
        self.db.table(base).unwrap_or_else(|| panic!("cannot resolve alias {alias} to a table"))
    }

    /// Exact cardinality of a full query via its cheapest structural plan
    /// (used to produce ground-truth query cardinalities).
    pub fn true_rows(&self, plan: &PlanNode) -> u64 {
        self.execute(plan).rows
    }

    /// Execute and additionally report the *wall-clock* seconds the
    /// execution took. Virtual time is the experiment currency (it is
    /// deterministic); wall time is exposed as a sanity check that virtual
    /// and physical effort are correlated.
    pub fn execute_timed(&self, plan: &PlanNode) -> (ExecutionResult, f64) {
        let start = std::time::Instant::now();
        let res = self.execute(plan);
        (res, start.elapsed().as_secs_f64())
    }

    /// Block size used by the cost formulas (re-exported for the paper cost
    /// model).
    pub fn block_size() -> usize {
        BLOCK_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{JoinOp, PlanNode, ScanOp};
    use crate::query::{ColRef, Filter, JoinPred, Query, RelRef};
    use qpseeker_storage::datagen::imdb;
    use qpseeker_storage::{
        Catalog, Column, ColumnMeta, Database, ForeignKey, IndexMeta, TableMeta,
    };

    /// Hand-built 2-table database with known join result.
    fn micro_db() -> Database {
        let a = qpseeker_storage::Table::new(
            "a",
            vec![
                Column { name: "id".into(), data: ColumnData::Int(vec![0, 1, 2, 3]) },
                Column { name: "v".into(), data: ColumnData::Int(vec![10, 20, 30, 40]) },
            ],
        );
        let b = qpseeker_storage::Table::new(
            "b",
            vec![
                Column { name: "id".into(), data: ColumnData::Int(vec![0, 1, 2, 3, 4, 5]) },
                Column { name: "a_id".into(), data: ColumnData::Int(vec![0, 0, 1, 2, 2, 2]) },
            ],
        );
        let catalog = Catalog {
            tables: vec![
                TableMeta {
                    name: "a".into(),
                    columns: vec![
                        ColumnMeta { name: "id".into(), dtype: qpseeker_storage::DataType::Int },
                        ColumnMeta { name: "v".into(), dtype: qpseeker_storage::DataType::Int },
                    ],
                },
                TableMeta {
                    name: "b".into(),
                    columns: vec![
                        ColumnMeta { name: "id".into(), dtype: qpseeker_storage::DataType::Int },
                        ColumnMeta { name: "a_id".into(), dtype: qpseeker_storage::DataType::Int },
                    ],
                },
            ],
            foreign_keys: vec![ForeignKey {
                from_table: "b".into(),
                from_col: "a_id".into(),
                to_table: "a".into(),
                to_col: "id".into(),
            }],
            indexes: vec![
                IndexMeta::for_column("a", "id", 4, true),
                IndexMeta::for_column("b", "a_id", 6, false),
            ],
        };
        Database::new("micro", catalog, vec![a, b])
    }

    fn micro_query() -> Query {
        let mut q = Query::new("q");
        q.relations = vec![RelRef::new("a"), RelRef::new("b")];
        q.joins = vec![JoinPred { left: ColRef::new("b", "a_id"), right: ColRef::new("a", "id") }];
        q
    }

    #[test]
    fn scan_without_filters_returns_all_rows() {
        let db = micro_db();
        let ex = Executor::new(&db);
        let q = micro_query();
        let plan = PlanNode::scan(&q, "a", ScanOp::SeqScan);
        let res = ex.execute(&plan);
        assert_eq!(res.rows, 4);
        assert!(!res.timed_out);
        assert!(res.time_ms > 0.0);
        assert!(res.cost > 0.0);
    }

    #[test]
    fn scan_filters_apply() {
        let db = micro_db();
        let ex = Executor::new(&db);
        let mut q = micro_query();
        q.filters.push(Filter { col: ColRef::new("a", "v"), op: CmpOp::Gt, value: 15.0 });
        let plan = PlanNode::scan(&q, "a", ScanOp::SeqScan);
        assert_eq!(ex.execute(&plan).rows, 3);
        q.filters[0].op = CmpOp::Eq;
        q.filters[0].value = 30.0;
        let plan = PlanNode::scan(&q, "a", ScanOp::SeqScan);
        assert_eq!(ex.execute(&plan).rows, 1);
    }

    #[test]
    fn index_scan_same_semantics_as_seq_scan() {
        let db = micro_db();
        let ex = Executor::new(&db);
        let mut q = micro_query();
        q.filters.push(Filter { col: ColRef::new("b", "a_id"), op: CmpOp::Ge, value: 1.0 });
        let seq = ex.execute(&PlanNode::scan(&q, "b", ScanOp::SeqScan));
        let idx = ex.execute(&PlanNode::scan(&q, "b", ScanOp::IndexScan));
        let bix = ex.execute(&PlanNode::scan(&q, "b", ScanOp::BitmapIndexScan));
        assert_eq!(seq.rows, 4);
        assert_eq!(idx.rows, 4);
        assert_eq!(bix.rows, 4);
    }

    #[test]
    fn selective_index_scan_cheaper_than_seq_on_big_table() {
        let db = imdb::generate(1.0, 3);
        let ex = Executor::new(&db);
        let mut q = Query::new("q");
        q.relations = vec![RelRef::new("cast_info")];
        q.filters.push(Filter {
            col: ColRef::new("cast_info", "movie_id"),
            op: CmpOp::Eq,
            value: 5.0,
        });
        let seq = ex.execute(&PlanNode::scan(&q, "cast_info", ScanOp::SeqScan));
        let idx = ex.execute(&PlanNode::scan(&q, "cast_info", ScanOp::IndexScan));
        assert_eq!(seq.rows, idx.rows, "semantics must agree");
        assert!(
            idx.time_ms < seq.time_ms,
            "selective index scan ({}) must beat seq scan ({})",
            idx.time_ms,
            seq.time_ms
        );
    }

    #[test]
    fn join_result_matches_brute_force() {
        let db = micro_db();
        let ex = Executor::new(&db);
        let q = micro_query();
        // a_id values: [0,0,1,2,2,2] all present in a ⇒ 6 result rows.
        for op in JoinOp::ALL {
            let plan = PlanNode::join(
                &q,
                op,
                PlanNode::scan(&q, "a", ScanOp::SeqScan),
                PlanNode::scan(&q, "b", ScanOp::SeqScan),
            );
            let res = ex.execute(&plan);
            assert_eq!(res.rows, 6, "{op:?} wrong cardinality");
        }
    }

    #[test]
    fn join_operator_choice_changes_time_not_rows() {
        let db = imdb::generate(0.5, 3);
        let ex = Executor::new(&db);
        let mut q = Query::new("q");
        q.relations = vec![RelRef::new("title"), RelRef::new("cast_info")];
        q.joins = vec![JoinPred {
            left: ColRef::new("cast_info", "movie_id"),
            right: ColRef::new("title", "id"),
        }];
        let mk = |op| {
            PlanNode::join(
                &q,
                op,
                PlanNode::scan(&q, "title", ScanOp::SeqScan),
                PlanNode::scan(&q, "cast_info", ScanOp::SeqScan),
            )
        };
        let h = ex.execute(&mk(JoinOp::HashJoin));
        let m = ex.execute(&mk(JoinOp::MergeJoin));
        let n = ex.execute(&mk(JoinOp::NestedLoopJoin));
        assert_eq!(h.rows, m.rows);
        assert_eq!(h.rows, n.rows);
        // Nested loop over two thousand-row inputs must be far slower.
        assert!(n.time_ms > 10.0 * h.time_ms, "nlj {} vs hash {}", n.time_ms, h.time_ms);
    }

    #[test]
    fn per_node_profiles_are_cumulative_and_postordered() {
        let db = micro_db();
        let ex = Executor::new(&db);
        let q = micro_query();
        let plan = PlanNode::join(
            &q,
            JoinOp::HashJoin,
            PlanNode::scan(&q, "a", ScanOp::SeqScan),
            PlanNode::scan(&q, "b", ScanOp::SeqScan),
        );
        let res = ex.execute(&plan);
        assert_eq!(res.nodes.len(), 3);
        assert_eq!(res.nodes[0].rows, 4); // scan a
        assert_eq!(res.nodes[1].rows, 6); // scan b
        assert_eq!(res.nodes[2].rows, 6); // join
        assert!(res.nodes[2].time_ms >= res.nodes[0].time_ms + res.nodes[1].time_ms);
        assert!(res.nodes[2].cost >= res.nodes[0].cost + res.nodes[1].cost);
        assert_eq!(res.time_ms, res.nodes[2].time_ms);
    }

    #[test]
    fn multi_predicate_join() {
        // Join on two columns at once: only exact pairs match.
        let a = qpseeker_storage::Table::new(
            "a",
            vec![
                Column { name: "x".into(), data: ColumnData::Int(vec![1, 1, 2]) },
                Column { name: "y".into(), data: ColumnData::Int(vec![1, 2, 1]) },
            ],
        );
        let b = qpseeker_storage::Table::new(
            "b",
            vec![
                Column { name: "x".into(), data: ColumnData::Int(vec![1, 2]) },
                Column { name: "y".into(), data: ColumnData::Int(vec![2, 1]) },
            ],
        );
        let catalog = Catalog {
            tables: vec![
                TableMeta {
                    name: "a".into(),
                    columns: vec![
                        ColumnMeta { name: "x".into(), dtype: qpseeker_storage::DataType::Int },
                        ColumnMeta { name: "y".into(), dtype: qpseeker_storage::DataType::Int },
                    ],
                },
                TableMeta {
                    name: "b".into(),
                    columns: vec![
                        ColumnMeta { name: "x".into(), dtype: qpseeker_storage::DataType::Int },
                        ColumnMeta { name: "y".into(), dtype: qpseeker_storage::DataType::Int },
                    ],
                },
            ],
            foreign_keys: vec![],
            indexes: vec![],
        };
        let db = Database::new("m2", catalog, vec![a, b]);
        let ex = Executor::new(&db);
        let mut q = Query::new("q");
        q.relations = vec![RelRef::new("a"), RelRef::new("b")];
        q.joins = vec![
            JoinPred { left: ColRef::new("a", "x"), right: ColRef::new("b", "x") },
            JoinPred { left: ColRef::new("a", "y"), right: ColRef::new("b", "y") },
        ];
        let plan = PlanNode::join(
            &q,
            JoinOp::HashJoin,
            PlanNode::scan(&q, "a", ScanOp::SeqScan),
            PlanNode::scan(&q, "b", ScanOp::SeqScan),
        );
        // matches: a(1,2)~b(1,2), a(2,1)~b(2,1) ⇒ 2 rows.
        assert_eq!(ex.execute(&plan).rows, 2);
    }

    #[test]
    fn row_cap_triggers_timeout() {
        let db = micro_db();
        let mut ex = Executor::new(&db);
        ex.max_intermediate = 3;
        let q = micro_query();
        let plan = PlanNode::join(
            &q,
            JoinOp::HashJoin,
            PlanNode::scan(&q, "a", ScanOp::SeqScan),
            PlanNode::scan(&q, "b", ScanOp::SeqScan),
        );
        let res = ex.execute(&plan);
        assert!(res.timed_out);
        assert!(res.time_ms > 0.0);
    }

    #[test]
    fn three_way_join_on_imdb() {
        let db = imdb::generate(0.2, 3);
        let ex = Executor::new(&db);
        let mut q = Query::new("q");
        q.relations =
            vec![RelRef::new("title"), RelRef::new("movie_info"), RelRef::new("movie_keyword")];
        q.joins = vec![
            JoinPred {
                left: ColRef::new("movie_info", "movie_id"),
                right: ColRef::new("title", "id"),
            },
            JoinPred {
                left: ColRef::new("movie_keyword", "movie_id"),
                right: ColRef::new("title", "id"),
            },
        ];
        let p1 = PlanNode::join(
            &q,
            JoinOp::HashJoin,
            PlanNode::join(
                &q,
                JoinOp::HashJoin,
                PlanNode::scan(&q, "title", ScanOp::SeqScan),
                PlanNode::scan(&q, "movie_info", ScanOp::SeqScan),
            ),
            PlanNode::scan(&q, "movie_keyword", ScanOp::SeqScan),
        );
        // Different join order must give the same cardinality.
        let p2 = PlanNode::join(
            &q,
            JoinOp::MergeJoin,
            PlanNode::join(
                &q,
                JoinOp::HashJoin,
                PlanNode::scan(&q, "title", ScanOp::SeqScan),
                PlanNode::scan(&q, "movie_keyword", ScanOp::SeqScan),
            ),
            PlanNode::scan(&q, "movie_info", ScanOp::SeqScan),
        );
        let r1 = ex.execute(&p1);
        let r2 = ex.execute(&p2);
        assert_eq!(r1.rows, r2.rows);
        assert!(r1.rows > 0);
    }

    #[test]
    fn execution_is_deterministic() {
        let db = imdb::generate(0.2, 3);
        let ex = Executor::new(&db);
        let mut q = Query::new("q");
        q.relations = vec![RelRef::new("title"), RelRef::new("cast_info")];
        q.joins = vec![JoinPred {
            left: ColRef::new("cast_info", "movie_id"),
            right: ColRef::new("title", "id"),
        }];
        let plan = PlanNode::join(
            &q,
            JoinOp::HashJoin,
            PlanNode::scan(&q, "title", ScanOp::SeqScan),
            PlanNode::scan(&q, "cast_info", ScanOp::SeqScan),
        );
        let a = ex.execute(&plan);
        let b = ex.execute(&plan);
        assert_eq!(a.rows, b.rows);
        assert_eq!(a.time_ms, b.time_ms);
        assert_eq!(a.cost, b.cost);
    }
}
