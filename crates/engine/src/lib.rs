//! `qpseeker-engine` — the query-engine substrate (the "PostgreSQL" of this
//! reproduction).
//!
//! * [`query`] — logical SPJ queries: relations `T_q`, joins `J_q`,
//!   predicates `P_q` (the paper's three query sets),
//! * [`plan`] — physical plan trees over the six-operator vocabulary
//!   (Seq/Index/BitmapIndex scans, Hash/Merge/NestedLoop joins),
//! * [`executor`] — exact execution with deterministic virtual-time and
//!   PG-cost-unit accounting (the ground-truth generator),
//! * [`cardest`] — histogram/MCV cardinality estimation with the
//!   independence assumption (baseline "PostgreSQL" estimates),
//! * [`explain`] — per-node EXPLAIN estimates fed to QPSeeker's encoders,
//! * [`optimizer`] — DP/greedy cost-based planner with Bao-style hints,
//! * [`paper_cost`] — the paper's §5.1 user-defined cost model (verbatim),
//! * [`inject`] — pgCuckoo-style plan injection.
//!
//! # Example: optimize and execute a join
//!
//! ```
//! use qpseeker_engine::prelude::*;
//!
//! let db = qpseeker_storage::datagen::imdb::generate(0.05, 1);
//! let mut q = Query::new("example");
//! q.relations = vec![RelRef::new("title"), RelRef::new("movie_info")];
//! q.joins = vec![JoinPred {
//!     left: ColRef::new("movie_info", "movie_id"),
//!     right: ColRef::new("title", "id"),
//! }];
//! let plan = PgOptimizer::new(&db).plan(&q);
//! let result = Executor::new(&db).execute(&plan);
//! assert!(result.rows > 0);
//! ```

pub mod cardest;
pub mod error;
pub mod executor;
pub mod explain;
pub mod inject;
pub mod optimizer;
pub mod paper_cost;
pub mod plan;
pub mod query;
pub mod sql;

/// Convenient glob import for downstream crates.
pub mod prelude {
    pub use crate::cardest::CardEstimator;
    pub use crate::error::EngineError;
    pub use crate::executor::{
        join_charge, scan_charge, CostUnits, ExecutionResult, Executor, NodeProfile, ScanShape,
        TimeWeights,
    };
    pub use crate::explain::{Explain, NodeEstimate};
    pub use crate::inject::LeftDeepSpec;
    pub use crate::optimizer::{Hints, PgOptimizer};
    pub use crate::paper_cost::PaperCostModel;
    pub use crate::plan::{JoinOp, PhysicalOp, PlanNode, ScanOp};
    pub use crate::query::{CmpOp, ColRef, Filter, JoinPred, Query, RelRef};
    pub use crate::sql::parse as parse_sql;
}
