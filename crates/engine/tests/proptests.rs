//! Property tests for the engine: executor correctness against brute force,
//! operator equivalence, spec round-trips, estimator bounds.

use proptest::prelude::*;
use qpseeker_engine::prelude::*;
use qpseeker_storage::{
    Catalog, Column, ColumnData, ColumnMeta, Database, ForeignKey, IndexMeta, Table, TableMeta,
};

/// Build a 2-table database from arbitrary small column contents.
fn build_db(a_vals: Vec<i64>, b_fk: Vec<i64>) -> Database {
    let a = Table::new(
        "a",
        vec![
            Column { name: "id".into(), data: ColumnData::Int((0..a_vals.len() as i64).collect()) },
            Column { name: "v".into(), data: ColumnData::Int(a_vals) },
        ],
    );
    let b = Table::new(
        "b",
        vec![
            Column { name: "id".into(), data: ColumnData::Int((0..b_fk.len() as i64).collect()) },
            Column { name: "a_id".into(), data: ColumnData::Int(b_fk) },
        ],
    );
    let catalog = Catalog {
        tables: vec![
            TableMeta {
                name: "a".into(),
                columns: vec![
                    ColumnMeta { name: "id".into(), dtype: qpseeker_storage::DataType::Int },
                    ColumnMeta { name: "v".into(), dtype: qpseeker_storage::DataType::Int },
                ],
            },
            TableMeta {
                name: "b".into(),
                columns: vec![
                    ColumnMeta { name: "id".into(), dtype: qpseeker_storage::DataType::Int },
                    ColumnMeta { name: "a_id".into(), dtype: qpseeker_storage::DataType::Int },
                ],
            },
        ],
        foreign_keys: vec![ForeignKey {
            from_table: "b".into(),
            from_col: "a_id".into(),
            to_table: "a".into(),
            to_col: "id".into(),
        }],
        indexes: vec![
            IndexMeta::for_column("a", "id", 8, true),
            IndexMeta::for_column("b", "a_id", 8, false),
        ],
    };
    Database::new("prop", catalog, vec![a, b])
}

fn join_query() -> Query {
    let mut q = Query::new("q");
    q.relations = vec![RelRef::new("a"), RelRef::new("b")];
    q.joins = vec![JoinPred { left: ColRef::new("b", "a_id"), right: ColRef::new("a", "id") }];
    q
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Join cardinality equals the brute-force count for every operator.
    #[test]
    fn join_matches_brute_force(
        a_vals in proptest::collection::vec(-5i64..5, 1..20),
        b_fk_raw in proptest::collection::vec(0i64..30, 1..30),
    ) {
        let n_a = a_vals.len() as i64;
        // Some FKs dangle (point past a): those rows must not join.
        let b_fk: Vec<i64> = b_fk_raw;
        let expected: u64 = b_fk.iter().filter(|&&v| v < n_a).count() as u64;
        let db = build_db(a_vals, b_fk);
        let q = join_query();
        let ex = Executor::new(&db);
        for op in JoinOp::ALL {
            let plan = PlanNode::join(
                &q,
                op,
                PlanNode::scan(&q, "a", ScanOp::SeqScan),
                PlanNode::scan(&q, "b", ScanOp::SeqScan),
            );
            prop_assert_eq!(ex.execute(&plan).rows, expected, "{:?}", op);
        }
    }

    /// All three scan operators return identical row sets for any filter.
    #[test]
    fn scan_operators_agree(
        a_vals in proptest::collection::vec(-10i64..10, 1..40),
        threshold in -10.0f64..10.0,
        op_idx in 0usize..5,
    ) {
        let db = build_db(a_vals.clone(), vec![0]);
        let mut q = Query::new("q");
        q.relations = vec![RelRef::new("a")];
        q.filters.push(Filter {
            col: ColRef::new("a", "id"),
            op: CmpOp::ALL[op_idx],
            value: threshold,
        });
        let ex = Executor::new(&db);
        let counts: Vec<u64> = ScanOp::ALL
            .iter()
            .map(|&s| ex.execute(&PlanNode::scan(&q, "a", s)).rows)
            .collect();
        prop_assert_eq!(counts[0], counts[1]);
        prop_assert_eq!(counts[0], counts[2]);
        // And equals the brute-force count over the id column.
        let brute = (0..a_vals.len() as i64)
            .filter(|&i| CmpOp::ALL[op_idx].eval(i as f64, threshold))
            .count() as u64;
        prop_assert_eq!(counts[0], brute);
    }

    /// Left-deep specs round-trip through compilation.
    #[test]
    fn spec_round_trip(seed in 0u64..500) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let q = join_query();
        let spec = LeftDeepSpec {
            scans: vec![
                ("a".into(), ScanOp::ALL[rng.gen_range(0..3)]),
                ("b".into(), ScanOp::ALL[rng.gen_range(0..3)]),
            ],
            joins: vec![JoinOp::ALL[rng.gen_range(0..3)]],
        };
        let plan = spec.compile(&q).unwrap();
        prop_assert_eq!(LeftDeepSpec::from_plan(&plan).unwrap(), spec);
    }

    /// Filter selectivities are always within [0, 1] and estimates ≥ 1 row.
    #[test]
    fn estimator_bounds(
        a_vals in proptest::collection::vec(-100i64..100, 2..50),
        value in -200.0f64..200.0,
        op_idx in 0usize..5,
    ) {
        let db = build_db(a_vals, vec![0]);
        let est = CardEstimator::new(&db);
        let f = Filter { col: ColRef::new("a", "v"), op: CmpOp::ALL[op_idx], value };
        let s = est.filter_selectivity("a", &f);
        prop_assert!((0.0..=1.0).contains(&s), "selectivity {}", s);
        let mut q = Query::new("q");
        q.relations = vec![RelRef::new("a")];
        q.filters.push(f);
        prop_assert!(est.scan_rows(&q, "a") >= 1.0);
    }

    /// Virtual time is additive: a plan's total equals the root profile, and
    /// every parent's cumulative time is at least the sum of its children's.
    #[test]
    fn virtual_time_is_monotone(
        a_vals in proptest::collection::vec(-5i64..5, 1..15),
        b_fk in proptest::collection::vec(0i64..15, 1..25),
    ) {
        let db = build_db(a_vals, b_fk);
        let q = join_query();
        let ex = Executor::new(&db);
        let plan = PlanNode::join(
            &q,
            JoinOp::HashJoin,
            PlanNode::scan(&q, "a", ScanOp::SeqScan),
            PlanNode::scan(&q, "b", ScanOp::SeqScan),
        );
        let res = ex.execute(&plan);
        prop_assert_eq!(res.nodes.len(), 3);
        prop_assert!(res.nodes[2].time_ms >= res.nodes[0].time_ms + res.nodes[1].time_ms);
        prop_assert!((res.time_ms - res.nodes[2].time_ms).abs() < 1e-9);
    }
}
