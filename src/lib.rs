//! Umbrella crate for the QPSeeker reproduction workspace.
//!
//! Re-exports the public crates so examples and integration tests can use a
//! single dependency. See `README.md` for the architecture overview and
//! `DESIGN.md` for the system inventory.

pub use qpseeker_baselines as baselines;
pub use qpseeker_core as core;
pub use qpseeker_engine as engine;
pub use qpseeker_nn as nn;
pub use qpseeker_storage as storage;
pub use qpseeker_tabert as tabert;
pub use qpseeker_workloads as workloads;
