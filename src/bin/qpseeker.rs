//! `qpseeker` — command-line interface to the reproduction.
//!
//! ```text
//! qpseeker gen-db    --schema imdb|stack --scale 0.2 --seed 42 --out db.json
//! qpseeker train     --db db.json --workload synthetic|job|stack --queries 200 \
//!                    --config small|bench|paper --out model.json \
//!                    [--resume] [--snapshot-dir dir] [--keep 3]
//! qpseeker explain   --db db.json --sql "SELECT COUNT(*) FROM ..."
//! qpseeker run       --db db.json --sql "SELECT COUNT(*) FROM ..."
//! qpseeker plan      --db db.json --model model.json --sql "..." [--execute]
//! qpseeker serve     --db db.json --sql "..." | --stream 50 [--model model.json]
//!                    [--online --state-dir state/ --retrain-every 16]
//! qpseeker experience show --state-dir state/ [--tail 10]
//! ```
//!
//! Databases and models are plain JSON artifacts, so sessions compose:
//! generate once, train once, plan many times. Training with `--resume`
//! journals a snapshot after every epoch (atomic rename + checksum) and
//! picks up from the newest valid one after a crash, with bitwise-identical
//! final parameters.

use qpseeker_repro::core::prelude::*;
use qpseeker_repro::engine::prelude::*;
use qpseeker_repro::storage::Database;
use qpseeker_repro::workloads::{
    job, stack, synthetic, tenants, JobConfig, Qep, StackConfig, SyntheticConfig,
    TenantStreamConfig,
};
use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    // `experience` takes a positional action ("show") before its options,
    // so it parses its own argument tail.
    let result = if cmd == "experience" {
        experience_cmd(rest)
    } else {
        let opts = match parse_opts(rest) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("error: {e}\n\n{USAGE}");
                return ExitCode::FAILURE;
            }
        };
        match cmd.as_str() {
            "gen-db" => gen_db(&opts),
            "train" => train(&opts),
            "explain" => explain(&opts),
            "run" => run(&opts),
            "plan" => plan(&opts),
            "serve" => serve(&opts),
            "help" | "--help" | "-h" => {
                println!("{USAGE}");
                Ok(())
            }
            other => Err(format!("unknown command '{other}'")),
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
qpseeker — neural query planner (QPSeeker reproduction)

commands:
  gen-db   --schema imdb|stack --scale <f64> --seed <u64> --out <db.json>
  train    --db <db.json> --workload synthetic|job|stack --queries <n>
           [--config small|bench|paper] [--epochs <n>] --out <model.json>
           [--resume] [--snapshot-dir <dir>] [--keep <n>]
           (--resume journals per-epoch snapshots to <dir> — default
            <out>.snapshots — and continues from the newest valid one;
            a resumed run lands on bitwise-identical parameters)
  explain  --db <db.json> --sql \"SELECT COUNT(*) FROM ...\"
  run      --db <db.json> --sql \"...\"            (optimize + execute)
  plan     --db <db.json> --model <model.json> --sql \"...\" [--execute]
           [--parallel-sims <n>] (neural planning with MCTS; n >= 1 shards
            one query's simulations over up to n threads — the chosen plan
            is bitwise identical for every n; 0 = classic single tree)
  serve    --db <db.json> --sql \"...\" [--model <model.json>]
           [--deadline-ms <f64>] [--retries <n>] [--chaos <p> --seed <u64>]
           (neural planning with deadline watchdog, retries and classical
            fallback; --chaos arms deterministic fault injection)
           --stream <n> replaces --sql: a supervised serving loop over n
           synthetic queries with a bounded admission queue, deadline-aware
           load-shedding and a neural/classical circuit breaker
           [--queue <n>] [--service-ms <f64>] [--interval-ms <f64>]
           [--workers <n>] (serve the stream on n planner threads, each
            with its own session over the shared model; default 1)
           [--batch-eval <n>] (candidates scored per batched cost-model
            pass, for every strategy; 1 disables batching; default 16)
           [--broker] (fuse candidate scoring across all workers through a
            shared eval broker: congruent requests pack into wide forward
            passes; plans are bitwise identical to broker-off serving)
           [--batch-target <rows>] (broker: rows at which a fused batch
            flushes immediately; default 64)
           [--batch-window-us <us>] (broker: micro-batch deadline on the
            broker's round clock before a sub-target batch flushes anyway;
            default 200)
           [--parallel-sims <n>] (root-parallel in-query MCTS shards;
            see plan; default 0)
           [--strategy mcts|beam] (search strategy: left-deep MCTS —
            the default, bitwise identical to earlier releases — or
            deterministic beam search over bushy plan shapes)
           [--beam-width <n>] (states kept per beam level; default 8)
           [--risk-lambda <f64>] (risk-aware scoring: rank candidates by
            mean + lambda*sigma over seeded latent cost samples; 0 — the
            default — keeps exact mean-only scoring)
           [--risk-samples <n>] (latent samples per evaluation; default 8)
           --online closes the serving loop: executions are appended to a
           durable experience WAL under --state-dir, a background fine-tune
           runs every --retrain-every records, candidates pass a held-out
           promotion gate before a zero-downtime hot-swap, and a regression
           monitor rolls a bad swap back automatically (requires --model)
           [--state-dir <dir>] [--batch <n>] [--retrain-every <n>]
           [--holdout <n>] [--gate-tol <f64>]
           --tenants <n> replaces --sql/--stream semantics: a mixed stream
           over n tenant lanes, each with its own bounded queue, circuit
           breaker and fair-share weight; models live in a memory-budgeted
           registry (LRU eviction + reload-on-miss)
           [--stream <n>] (total requests; default 100)
           [--weights w0,w1,...] (per-tenant service-rate weights)
           [--risk-lambdas l0,l1,...] (per-tenant risk weights; lane i
            plans with --strategy's settings at lambda = li, and cache
            entries stay isolated per strategy stamp)
           [--cache <per-shard-capacity>] (fingerprint plan cache; hits
            are bitwise identical to cache-miss MCTS)
           [--mem-budget <bytes>] (registry memory budget; LRU eviction)
           [--chaos <p> --chaos-tenant <id>] (aim faults at one lane only
            — the other lanes' plans and breakers are unaffected)
           [--broker [--batch-target <rows>] [--batch-window-us <us>]]
            (one eval broker shared by every lane: candidate scoring fuses
             across tenants; per-lane plans and counters are unchanged)
  experience show --state-dir <dir> [--tail <n>]
           (dump the experience WAL an online server accumulated:
            disposition, predicted vs observed runtime per record)";

type Opts = HashMap<String, String>;

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut out = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --option, got '{}'", args[i]))?;
        if i + 1 < args.len() && !args[i + 1].starts_with("--") {
            out.insert(key.to_string(), args[i + 1].clone());
            i += 2;
        } else {
            out.insert(key.to_string(), "true".to_string());
            i += 1;
        }
    }
    Ok(out)
}

fn req<'a>(opts: &'a Opts, key: &str) -> Result<&'a str, String> {
    opts.get(key).map(String::as_str).ok_or_else(|| format!("missing --{key}"))
}

fn load_db(opts: &Opts) -> Result<Arc<Database>, String> {
    let path = req(opts, "db")?;
    let data = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    serde_json::from_str(&data).map(Arc::new).map_err(|e| format!("parse {path}: {e}"))
}

fn gen_db(opts: &Opts) -> Result<(), String> {
    let schema = req(opts, "schema")?;
    let scale: f64 = opts
        .get("scale")
        .map(|s| s.parse())
        .transpose()
        .map_err(|e| format!("--scale: {e}"))?
        .unwrap_or(0.1);
    let seed: u64 = opts
        .get("seed")
        .map(|s| s.parse())
        .transpose()
        .map_err(|e| format!("--seed: {e}"))?
        .unwrap_or(42);
    let out = req(opts, "out")?;
    let db = match schema {
        "imdb" => qpseeker_repro::storage::datagen::imdb::generate(scale, seed),
        "stack" => qpseeker_repro::storage::datagen::stack::generate(scale, seed),
        other => return Err(format!("unknown schema '{other}' (imdb|stack)")),
    };
    let json = serde_json::to_string(&db).map_err(|e| e.to_string())?;
    write_atomic(std::path::Path::new(out), &json, None).map_err(|e| e.to_string())?;
    println!(
        "wrote {out}: schema {schema}, {} tables, {} rows",
        db.catalog.num_tables(),
        db.total_rows()
    );
    Ok(())
}

fn model_config(opts: &Opts) -> Result<ModelConfig, String> {
    let mut cfg = match opts.get("config").map(String::as_str).unwrap_or("small") {
        "small" => ModelConfig::small(),
        "bench" => ModelConfig::bench(),
        "paper" => ModelConfig::paper(),
        other => return Err(format!("unknown config '{other}' (small|bench|paper)")),
    };
    if let Some(e) = opts.get("epochs") {
        cfg.epochs = e.parse().map_err(|e| format!("--epochs: {e}"))?;
    }
    Ok(cfg)
}

fn train(opts: &Opts) -> Result<(), String> {
    let db = load_db(opts)?;
    let kind = req(opts, "workload")?;
    let queries: usize = opts
        .get("queries")
        .map(|s| s.parse())
        .transpose()
        .map_err(|e| format!("--queries: {e}"))?
        .unwrap_or(200);
    let out = req(opts, "out")?;
    eprintln!("generating {kind} workload ({queries} queries)...");
    let workload = match kind {
        "synthetic" => {
            synthetic::generate_sampled(&db, &SyntheticConfig { n_queries: queries, seed: 7 }, 4)
        }
        "job" => job::generate(
            &db,
            &JobConfig {
                n_queries: queries.min(113),
                target_qeps: queries * 8,
                keep_fraction: 1.0,
                ..Default::default()
            },
        ),
        "stack" => stack::generate(&db, &StackConfig { n_queries: queries, seed: 7 }),
        other => return Err(format!("unknown workload '{other}'")),
    };
    eprintln!("training on {} QEPs...", workload.num_qeps());
    let cfg = model_config(opts)?;
    let mut model = QPSeeker::new(&db, cfg);
    let refs: Vec<&Qep> = workload.qeps.iter().collect();
    let report = if opts.contains_key("resume") || opts.contains_key("snapshot-dir") {
        let dir = opts.get("snapshot-dir").cloned().unwrap_or_else(|| format!("{out}.snapshots"));
        let keep: usize = opts
            .get("keep")
            .map(|s| s.parse())
            .transpose()
            .map_err(|e| format!("--keep: {e}"))?
            .unwrap_or(3);
        let journal = SnapshotStore::create(&dir, "epoch", keep).map_err(|e| e.to_string())?;
        eprintln!("journaling per-epoch snapshots to {dir} (keep {keep})...");
        model.fit_resumable(&refs, &journal).map_err(|e| e.to_string())?
    } else {
        model.fit(&refs).map_err(|e| e.to_string())?
    };
    println!(
        "trained {} parameters in {:.1}s (loss {:.3} -> {:.3})",
        model.num_parameters(),
        report.train_seconds,
        report.epoch_losses.first().unwrap_or(&f64::NAN),
        report.epoch_losses.last().unwrap_or(&f64::NAN)
    );
    if !report.guards.is_clean() {
        eprintln!(
            "numerical guards fired: {} non-finite gradients zeroed, {} updates clamped, {} values reverted",
            report.guards.nonfinite_grads,
            report.guards.clipped_updates,
            report.guards.reverted_values
        );
    }
    let ckpt = Checkpoint::capture(&model, &db);
    let json = ckpt.to_json().map_err(|e| e.to_string())?;
    write_atomic(std::path::Path::new(out), &json, None).map_err(|e| e.to_string())?;
    println!("wrote {out}");
    Ok(())
}

fn explain(opts: &Opts) -> Result<(), String> {
    let db = load_db(opts)?;
    let q = parse_sql(&db, req(opts, "sql")?)?;
    let plan = PgOptimizer::new(&db).plan(&q);
    let expl = Explain::new(&db);
    println!("{}", expl.pretty(&q, &plan));
    Ok(())
}

fn run(opts: &Opts) -> Result<(), String> {
    let db = load_db(opts)?;
    let q = parse_sql(&db, req(opts, "sql")?)?;
    let plan = PgOptimizer::new(&db).plan(&q);
    let res = Executor::new(&db).execute(&plan);
    println!("{}", plan.pretty());
    println!("rows: {}  cost: {:.2}  virtual time: {:.3} ms", res.rows, res.cost, res.time_ms);
    Ok(())
}

fn plan(opts: &Opts) -> Result<(), String> {
    let db = load_db(opts)?;
    let q = parse_sql(&db, req(opts, "sql")?)?;
    let path = req(opts, "model")?;
    let data = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let ckpt = Checkpoint::from_json(&data).map_err(|e| e.to_string())?;
    let model = ckpt.restore(&db).map_err(|e| e.to_string())?;
    let mut mcts = MctsConfig::default();
    if let Some(p) = opts.get("parallel-sims") {
        mcts.parallel_sims = p.parse().map_err(|e| format!("--parallel-sims: {e}"))?;
    }
    let planner = MctsPlanner::new(mcts);
    let res = planner.plan(&model, &q);
    println!("{}", res.plan.pretty());
    println!(
        "predicted runtime: {:.3} ms ({} plans evaluated in {} simulations)",
        res.predicted_ms, res.plans_evaluated, res.simulations
    );
    if opts.contains_key("execute") {
        let exec = Executor::new(&db).execute(&res.plan);
        let pg_plan = PgOptimizer::new(&db).plan(&q);
        let pg = Executor::new(&db).execute(&pg_plan);
        println!(
            "executed: {} rows in {:.3} ms (PostgreSQL-style plan: {:.3} ms)",
            exec.rows, exec.time_ms, pg.time_ms
        );
    }
    Ok(())
}

/// Serve a query through the graceful-degradation path: neural planning
/// guarded by a deadline watchdog with bounded retries, falling back to the
/// classical optimizer. `--chaos <p>` arms every fault class at rate `p`.
/// With `--stream <n>` the queries run through the supervised serving loop
/// (bounded queue, load-shedding, circuit breaker) instead.
/// Apply the `--strategy`, `--risk-lambda`, `--risk-samples` and
/// `--beam-width` flags shared by every serve mode.
fn apply_strategy_opts(opts: &Opts, strat: &mut StrategyConfig) -> Result<(), String> {
    if let Some(s) = opts.get("strategy") {
        strat.kind =
            StrategyKind::parse(s).ok_or_else(|| format!("--strategy: '{s}' (mcts|beam)"))?;
    }
    if let Some(l) = opts.get("risk-lambda") {
        strat.risk_lambda = l.parse().map_err(|e| format!("--risk-lambda: {e}"))?;
        if strat.risk_lambda < 0.0 {
            return Err("--risk-lambda must be >= 0".into());
        }
    }
    if let Some(s) = opts.get("risk-samples") {
        strat.risk_samples = s.parse().map_err(|e| format!("--risk-samples: {e}"))?;
    }
    if let Some(w) = opts.get("beam-width") {
        strat.beam_width = w.parse().map_err(|e| format!("--beam-width: {e}"))?;
        if strat.beam_width == 0 {
            return Err("--beam-width must be at least 1".into());
        }
    }
    if let Some(b) = opts.get("batch-eval") {
        let n: usize = b.parse().map_err(|e| format!("--batch-eval: {e}"))?;
        if n == 0 {
            return Err("--batch-eval must be at least 1".into());
        }
        strat.batch_eval = Some(n);
    }
    Ok(())
}

/// `--broker [--batch-target <rows>] [--batch-window-us <us>]`: route
/// candidate scoring through a shared eval broker that fuses congruent
/// requests from every worker (and, under `--tenants`, every lane) into
/// wide forward passes. Plans are bitwise identical to broker-off serving.
fn apply_broker_opts(opts: &Opts, broker: &mut Option<BrokerConfig>) -> Result<(), String> {
    if !opts.contains_key("broker") {
        if opts.contains_key("batch-target") || opts.contains_key("batch-window-us") {
            return Err("--batch-target/--batch-window-us require --broker".into());
        }
        return Ok(());
    }
    let mut cfg = BrokerConfig::default();
    if let Some(t) = opts.get("batch-target") {
        cfg.batch_target = t.parse().map_err(|e| format!("--batch-target: {e}"))?;
        if cfg.batch_target == 0 {
            return Err("--batch-target must be at least 1".into());
        }
    }
    if let Some(w) = opts.get("batch-window-us") {
        cfg.batch_window_us = w.parse().map_err(|e| format!("--batch-window-us: {e}"))?;
    }
    *broker = Some(cfg);
    Ok(())
}

fn serve(opts: &Opts) -> Result<(), String> {
    let db = load_db(opts)?;
    if opts.contains_key("tenants") {
        return serve_tenants(&db, opts);
    }
    if opts.contains_key("stream") {
        return serve_stream(&db, opts);
    }
    let q = parse_sql(&db, req(opts, "sql")?)?;

    let mut cfg = ServeConfig::default();
    if let Some(d) = opts.get("deadline-ms") {
        cfg.deadline_ms = d.parse().map_err(|e| format!("--deadline-ms: {e}"))?;
    }
    if let Some(r) = opts.get("retries") {
        cfg.max_retries = r.parse().map_err(|e| format!("--retries: {e}"))?;
    }
    if let Some(p) = opts.get("parallel-sims") {
        cfg.mcts.parallel_sims = p.parse().map_err(|e| format!("--parallel-sims: {e}"))?;
    }
    // --batch-eval lands on the unified strategy knob.
    apply_strategy_opts(opts, &mut cfg.strategy)?;
    if let Some(p) = opts.get("chaos") {
        let p: f64 = p.parse().map_err(|e| format!("--chaos: {e}"))?;
        let seed: u64 = opts
            .get("seed")
            .map(|s| s.parse())
            .transpose()
            .map_err(|e| format!("--seed: {e}"))?
            .unwrap_or(42);
        cfg.faults = Some(qpseeker_repro::storage::FaultConfig::chaos(seed, p));
    }

    let model = match opts.get("model") {
        Some(path) => {
            let data = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
            let ckpt = Checkpoint::from_json(&data).map_err(|e| e.to_string())?;
            Some(ckpt.restore(&db).map_err(|e| e.to_string())?)
        }
        None => None,
    };

    let r = plan_with_fallback(&db, &q, model.as_ref(), &cfg);
    println!("{}", r.plan.pretty());
    let path = match r.served_by {
        ServedBy::Neural => format!("neural ({})", cfg.strategy.kind.as_str()),
        ServedBy::Classical => "classical (DP/greedy fallback)".into(),
    };
    println!("served by: {path} after {} neural attempt(s)", r.attempts);
    if let Some(p) = r.predicted_ms {
        println!("predicted runtime: {p:.3} ms");
    }
    for (i, f) in r.attempt_failures.iter().enumerate() {
        println!("  attempt {}: {f}", i + 1);
    }
    if let Some(reason) = &r.fallback_reason {
        println!("fallback reason: {reason}");
    }
    Ok(())
}

/// Supervised serving loop: `n` synthetic queries stream through the
/// [`Supervisor`] — bounded admission queue, deadline-aware shedding and a
/// circuit breaker guarding the neural path.
fn serve_stream(db: &Arc<Database>, opts: &Opts) -> Result<(), String> {
    let n: usize = req(opts, "stream")?.parse().map_err(|e| format!("--stream: {e}"))?;
    let seed: u64 = opts
        .get("seed")
        .map(|s| s.parse())
        .transpose()
        .map_err(|e| format!("--seed: {e}"))?
        .unwrap_or(42);
    let interval_ms: f64 = opts
        .get("interval-ms")
        .map(|s| s.parse())
        .transpose()
        .map_err(|e| format!("--interval-ms: {e}"))?
        .unwrap_or(5.0);

    let mut cfg = SupervisorConfig::default();
    if let Some(d) = opts.get("deadline-ms") {
        cfg.serve.deadline_ms = d.parse().map_err(|e| format!("--deadline-ms: {e}"))?;
    }
    if let Some(r) = opts.get("retries") {
        cfg.serve.max_retries = r.parse().map_err(|e| format!("--retries: {e}"))?;
    }
    if let Some(p) = opts.get("parallel-sims") {
        cfg.serve.mcts.parallel_sims = p.parse().map_err(|e| format!("--parallel-sims: {e}"))?;
    }
    // --batch-eval lands on the unified strategy knob.
    apply_strategy_opts(opts, &mut cfg.serve.strategy)?;
    apply_broker_opts(opts, &mut cfg.broker)?;
    if let Some(p) = opts.get("chaos") {
        let p: f64 = p.parse().map_err(|e| format!("--chaos: {e}"))?;
        cfg.serve.faults = Some(qpseeker_repro::storage::FaultConfig::chaos(seed, p));
    }
    if let Some(q) = opts.get("queue") {
        cfg.queue_capacity = q.parse().map_err(|e| format!("--queue: {e}"))?;
    }
    if let Some(s) = opts.get("service-ms") {
        cfg.service_ms = s.parse().map_err(|e| format!("--service-ms: {e}"))?;
    }
    if let Some(w) = opts.get("workers") {
        cfg.workers = w.parse().map_err(|e| format!("--workers: {e}"))?;
    }

    let model = match opts.get("model") {
        Some(path) => {
            let data = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
            let ckpt = Checkpoint::from_json(&data).map_err(|e| e.to_string())?;
            Some(ckpt.restore(db).map_err(|e| e.to_string())?)
        }
        None => None,
    };

    let workload = synthetic::generate(db, &SyntheticConfig { n_queries: n, seed });
    // Each query must finish within the per-query serving deadline after the
    // moment it reaches the server, so budget queue wait + service on top of
    // its arrival instant.
    let slack_ms = cfg.serve.deadline_ms.max(cfg.service_ms * 4.0);
    let requests: Vec<QueryRequest> = workload
        .qeps
        .iter()
        .enumerate()
        .map(|(i, qep)| {
            let arrival_ms = i as f64 * interval_ms;
            QueryRequest {
                query: qep.query.clone(),
                arrival_ms,
                deadline_ms: arrival_ms + slack_ms,
            }
        })
        .collect();

    if opts.contains_key("online") {
        return serve_online(db, opts, cfg, model, &requests);
    }

    eprintln!(
        "streaming {n} queries (interval {interval_ms} ms, queue {}, service {} ms, {} worker(s))...",
        cfg.queue_capacity,
        cfg.service_ms,
        cfg.workers.max(1)
    );
    let mut sup = Supervisor::new(cfg);
    let outcomes = sup.run(db, model.as_ref(), &requests);
    for out in &outcomes {
        print_outcome(out);
    }
    println!("{}", sup.counters());
    println!("breaker: {:?}", sup.breaker_state());
    Ok(())
}

/// Multi-tenant serving: `--tenants <n>` lanes over one database, each with
/// its own bounded queue, breaker and weight; models live in a memory-
/// budgeted registry and plans can be cached per tenant fingerprint.
fn serve_tenants(db: &Arc<Database>, opts: &Opts) -> Result<(), String> {
    let n_tenants: usize = req(opts, "tenants")?.parse().map_err(|e| format!("--tenants: {e}"))?;
    if n_tenants == 0 {
        return Err("--tenants must be at least 1".into());
    }
    let n: usize = opts
        .get("stream")
        .map(|s| s.parse())
        .transpose()
        .map_err(|e| format!("--stream: {e}"))?
        .unwrap_or(100);
    let seed: u64 = opts
        .get("seed")
        .map(|s| s.parse())
        .transpose()
        .map_err(|e| format!("--seed: {e}"))?
        .unwrap_or(42);
    let interval_ms: f64 = opts
        .get("interval-ms")
        .map(|s| s.parse())
        .transpose()
        .map_err(|e| format!("--interval-ms: {e}"))?
        .unwrap_or(5.0);

    let weights: Vec<f64> = match opts.get("weights") {
        Some(list) => {
            let ws: Result<Vec<f64>, _> = list.split(',').map(str::parse).collect();
            let ws = ws.map_err(|e| format!("--weights: {e}"))?;
            if ws.len() != n_tenants {
                return Err(format!("--weights lists {} values for {n_tenants} tenants", ws.len()));
            }
            ws
        }
        None => vec![1.0; n_tenants],
    };

    let mut base = SupervisorConfig::default();
    if let Some(d) = opts.get("deadline-ms") {
        base.serve.deadline_ms = d.parse().map_err(|e| format!("--deadline-ms: {e}"))?;
    }
    if let Some(r) = opts.get("retries") {
        base.serve.max_retries = r.parse().map_err(|e| format!("--retries: {e}"))?;
    }
    if let Some(q) = opts.get("queue") {
        base.queue_capacity = q.parse().map_err(|e| format!("--queue: {e}"))?;
    }
    if let Some(s) = opts.get("service-ms") {
        base.service_ms = s.parse().map_err(|e| format!("--service-ms: {e}"))?;
    }
    if let Some(w) = opts.get("workers") {
        base.workers = w.parse().map_err(|e| format!("--workers: {e}"))?;
    }
    apply_strategy_opts(opts, &mut base.serve.strategy)?;
    apply_broker_opts(opts, &mut base.broker)?;

    // Per-tenant risk weights: lane i runs `base.serve.strategy` with its
    // own λ, so one latency-SLO tenant can plan risk-averse while its
    // neighbors stay mean-only.
    let risk_lambdas: Option<Vec<f64>> = match opts.get("risk-lambdas") {
        Some(list) => {
            let ls: Result<Vec<f64>, _> = list.split(',').map(str::parse).collect();
            let ls = ls.map_err(|e| format!("--risk-lambdas: {e}"))?;
            if ls.len() != n_tenants {
                return Err(format!(
                    "--risk-lambdas lists {} values for {n_tenants} tenants",
                    ls.len()
                ));
            }
            if ls.iter().any(|l| *l < 0.0) {
                return Err("--risk-lambdas must all be >= 0".into());
            }
            Some(ls)
        }
        None => None,
    };

    // Chaos aimed at a single lane demonstrates the bulkhead: only the
    // targeted tenant's breaker reacts.
    let chaos: Option<(String, f64)> = match opts.get("chaos") {
        Some(p) => {
            let p: f64 = p.parse().map_err(|e| format!("--chaos: {e}"))?;
            let target = opts.get("chaos-tenant").cloned().unwrap_or_else(|| "t0".to_string());
            Some((target, p))
        }
        None => None,
    };

    let cache = match opts.get("cache") {
        Some(cap) => {
            let cap: usize = cap.parse().map_err(|e| format!("--cache: {e}"))?;
            Some(Arc::new(PlanCache::new(8, cap.max(1))))
        }
        None => None,
    };
    let mem_budget: usize = opts
        .get("mem-budget")
        .map(|s| s.parse())
        .transpose()
        .map_err(|e| format!("--mem-budget: {e}"))?
        .unwrap_or(usize::MAX);

    let model: Option<Arc<QPSeeker>> = match opts.get("model") {
        Some(path) => {
            let data = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
            let ckpt = Checkpoint::from_json(&data).map_err(|e| e.to_string())?;
            Some(Arc::new(ckpt.restore(db).map_err(|e| e.to_string())?))
        }
        None => None,
    };

    let mut registry = ModelRegistry::new(mem_budget);
    if let Some(cache) = &cache {
        registry = registry.attach_plan_cache(Arc::clone(cache));
    }
    let ids: Vec<String> = (0..n_tenants).map(|i| format!("t{i}")).collect();
    if let Some(model) = &model {
        for id in &ids {
            registry.register(id, Arc::clone(db), Arc::clone(model));
        }
    }

    let specs: Vec<TenantSpec> = ids
        .iter()
        .zip(&weights)
        .enumerate()
        .map(|(i, (id, &w))| {
            let mut spec = TenantSpec::new(id.clone(), Arc::clone(db)).with_weight(w);
            if let Some((target, p)) = &chaos {
                if target == id {
                    spec = spec.with_faults(qpseeker_repro::storage::FaultConfig::chaos(seed, *p));
                }
            }
            if let Some(ls) = &risk_lambdas {
                let mut strat = base.serve.strategy.clone();
                strat.risk_lambda = ls[i];
                spec = spec.with_strategy(strat);
            }
            spec
        })
        .collect();

    let tenant_dbs: Vec<(&str, &Database)> = ids.iter().map(|id| (id.as_str(), &**db)).collect();
    let items = tenants::generate_stream(
        &tenant_dbs,
        &TenantStreamConfig {
            n_requests: n,
            seed,
            mean_interarrival_ms: interval_ms,
            ..TenantStreamConfig::default()
        },
    );
    let slack_ms = base.serve.deadline_ms.max(base.service_ms * 4.0);
    let stream: Vec<TenantRequest> = items
        .into_iter()
        .map(|i| TenantRequest {
            tenant: i.tenant,
            req: QueryRequest {
                query: i.query,
                arrival_ms: i.arrival_ms,
                deadline_ms: i.arrival_ms + slack_ms,
            },
        })
        .collect();

    eprintln!(
        "streaming {n} queries across {n_tenants} tenant lane(s) (cache: {}, mem budget: {})...",
        if cache.is_some() { "on" } else { "off" },
        if mem_budget == usize::MAX { "unbounded".to_string() } else { format!("{mem_budget} B") },
    );
    let mut sup =
        MultiTenantSupervisor::new(MultiTenantConfig { base, cache: cache.clone() }, specs);
    let outcomes = sup.run(&registry, &stream);
    for out in &outcomes {
        match &out.outcome.disposition {
            Disposition::Served(r) => {
                let path = if r.cache_hit {
                    "neural (cached)"
                } else {
                    match r.served_by {
                        ServedBy::Neural => "neural",
                        ServedBy::Classical => "classical",
                    }
                };
                println!("[{}] query {}: {path}", out.tenant, out.outcome.query_id);
            }
            Disposition::Shed(reason) => {
                println!("[{}] query {}: shed — {reason}", out.tenant, out.outcome.query_id)
            }
            Disposition::Failed(why) => {
                println!("[{}] query {}: failed — {why}", out.tenant, out.outcome.query_id)
            }
        }
    }
    for (tenant, c) in sup.counters() {
        println!("{tenant}: {c} breaker={:?}", sup.breaker_states()[&tenant]);
    }
    println!("merged: {}", sup.merged_counters());
    if let Some(cache) = &cache {
        println!("plan cache: {}", cache.stats());
    }
    if mem_budget != usize::MAX {
        println!(
            "registry: {} resident, {} B / {} B, {} eviction(s)",
            registry.resident_tenants().len(),
            registry.mem_used_bytes(),
            registry.mem_budget_bytes(),
            registry.evictions(),
        );
    }
    Ok(())
}

fn print_outcome(out: &SupervisedOutcome) {
    match &out.disposition {
        Disposition::Served(r) => {
            let path = match r.served_by {
                ServedBy::Neural => "neural",
                ServedBy::Classical => "classical",
            };
            match &r.fallback_reason {
                Some(reason) => println!("query {}: {path} ({reason})", out.query_id),
                None => println!("query {}: {path}", out.query_id),
            }
        }
        Disposition::Shed(reason) => println!("query {}: shed — {reason}", out.query_id),
        Disposition::Failed(why) => println!("query {}: failed — {why}", out.query_id),
    }
}

/// Closed-loop serving: the stream runs through [`OnlinePlanner`] in batches,
/// so every execution lands in the experience WAL, fine-tune rounds fire as
/// enough records accumulate, and gated promotions hot-swap the serving model
/// mid-stream (with automatic rollback if the swap regresses).
fn serve_online(
    db: &Arc<Database>,
    opts: &Opts,
    sup_cfg: SupervisorConfig,
    model: Option<QPSeeker>,
    requests: &[QueryRequest],
) -> Result<(), String> {
    let model = model.ok_or("--online requires --model (a fitted base model to fine-tune)")?;
    let state_dir = opts.get("state-dir").cloned().unwrap_or_else(|| "qpseeker-online".to_string());
    let batch: usize = opts
        .get("batch")
        .map(|s| s.parse())
        .transpose()
        .map_err(|e| format!("--batch: {e}"))?
        .unwrap_or(16);
    let mut cfg = OnlineConfig::new(&state_dir);
    cfg.supervisor = sup_cfg;
    // One fault schedule covers both the serving path and the durable
    // (WAL/checkpoint/fine-tune) path, so `--chaos` exercises the whole loop.
    cfg.faults = cfg.supervisor.serve.faults.clone();
    if let Some(r) = opts.get("retrain-every") {
        cfg.retrain_every = r.parse().map_err(|e| format!("--retrain-every: {e}"))?;
    }
    if let Some(h) = opts.get("holdout") {
        cfg.holdout = h.parse().map_err(|e| format!("--holdout: {e}"))?;
    }
    if let Some(g) = opts.get("gate-tol") {
        cfg.gate_tolerance = g.parse().map_err(|e| format!("--gate-tol: {e}"))?;
    }
    let retrain_every = cfg.retrain_every;

    let mut op = OnlinePlanner::new(cfg, Arc::new(model), db).map_err(|e| e.to_string())?;
    eprintln!(
        "online serving {} queries (batches of {}, retrain every {} records, state in {state_dir}, epoch {})...",
        requests.len(),
        batch.max(1),
        retrain_every,
        op.cell().epoch()
    );
    for chunk in requests.chunks(batch.max(1)) {
        let report = op.run_batch(db, chunk).map_err(|e| e.to_string())?;
        for out in &report.outcomes {
            print_outcome(out);
        }
        if let Some(decision) = &report.promotion {
            println!("retrain round: {decision}");
        }
        if report.rolled_back {
            println!("regression detected: rolled back to the previous model");
        }
    }
    println!("{}", op.serve_counters());
    println!("online: {}", op.counters());
    println!(
        "serving epoch: {}  pending experience: {} record(s)",
        op.cell().epoch(),
        op.pending_experience()
    );
    Ok(())
}

/// `experience show --state-dir <dir> [--tail <n>]` — dump the experience
/// WAL an online server accumulated under `<dir>/wal`.
fn experience_cmd(args: &[String]) -> Result<(), String> {
    let usage = "usage: experience show --state-dir <dir> [--tail <n>]";
    let Some((action, rest)) = args.split_first() else {
        return Err(usage.to_string());
    };
    if action != "show" {
        return Err(format!("unknown experience action '{action}'\n{usage}"));
    }
    let opts = parse_opts(rest)?;
    let state_dir = req(&opts, "state-dir")?;
    let tail: usize = opts
        .get("tail")
        .map(|s| s.parse())
        .transpose()
        .map_err(|e| format!("--tail: {e}"))?
        .unwrap_or(10);

    let wal_dir = std::path::Path::new(state_dir).join("wal");
    if !wal_dir.is_dir() {
        return Err(format!(
            "no experience WAL at {} (has an online server run with --state-dir {state_dir}?)",
            wal_dir.display()
        ));
    }
    let wal = ExperienceWal::open(wal_dir, 64).map_err(|e| e.to_string())?;
    let recs = wal.records();
    let neural = recs.iter().filter(|r| r.disposition == ExperienceDisposition::Neural).count();
    println!(
        "{} record(s) in {} ({} neural, {} classical)",
        recs.len(),
        wal.dir().display(),
        neural,
        recs.len() - neural
    );
    if wal.tail_dropped() > 0 {
        println!("torn tail: {} trailing record(s) truncated on recovery", wal.tail_dropped());
    }
    if wal.quarantined() > 0 {
        println!("quarantined: {} unreadable segment(s) set aside", wal.quarantined());
    }
    let start = recs.len().saturating_sub(tail.max(1));
    if start > 0 {
        println!("... {start} earlier record(s) elided (raise --tail to show them)");
    }
    for r in &recs[start..] {
        let dispo = match r.disposition {
            ExperienceDisposition::Neural => "neural",
            ExperienceDisposition::Classical => "classical",
        };
        let predicted = match r.predicted_ms {
            Some(p) => format!("{p:9.3}"),
            None => format!("{:>9}", "-"),
        };
        println!(
            "#{:06} {dispo:9} predicted {predicted} ms  observed {:9.3} ms  rows {:6}  query {:016x}",
            r.seq,
            r.observed_ms(),
            r.observed_rows(),
            r.query_fp
        );
    }
    Ok(())
}
