//! Cross-crate end-to-end tests: the full train → plan → execute loop, and
//! determinism of the entire pipeline from one seed.

use qpseeker_repro::core::prelude::*;
use qpseeker_repro::engine::prelude::*;
use qpseeker_repro::workloads::{job, synthetic, JobConfig, Qep, SyntheticConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

fn db() -> std::sync::Arc<qpseeker_repro::storage::Database> {
    std::sync::Arc::new(qpseeker_repro::storage::datagen::imdb::generate(0.06, 77))
}

/// Random valid left-deep plan of a query.
fn random_plan(q: &Query, rng: &mut StdRng) -> PlanNode {
    let start = q.relations[rng.gen_range(0..q.relations.len())].alias.clone();
    let mut joined: BTreeSet<String> = BTreeSet::new();
    joined.insert(start.clone());
    let mut plan = PlanNode::scan(q, &start, ScanOp::ALL[rng.gen_range(0..3)]);
    while joined.len() < q.relations.len() {
        let nbrs = q.neighbors(&joined);
        let next = nbrs[rng.gen_range(0..nbrs.len())].clone();
        let scan = PlanNode::scan(q, &next, ScanOp::ALL[rng.gen_range(0..3)]);
        plan = PlanNode::join(q, JoinOp::ALL[rng.gen_range(0..3)], plan, scan);
        joined.insert(next);
    }
    plan
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "trains a model over a sampled 16-join plan space; minutes in debug builds — run with --release"
)]
fn trained_mcts_planner_beats_random_planning() {
    let db = db();
    // Train on sampled JOB QEPs (the setting where the learned cost model
    // sees many plans per query).
    // keep_fraction 1.0: the cost model must see good *and* catastrophic
    // plans to steer MCTS (the top-15% training set of the paper covers only
    // the good region; see the sampling ablation).
    let workload = job::generate(
        &db,
        &JobConfig {
            n_queries: 16,
            n_templates: 6,
            target_qeps: 320,
            keep_fraction: 1.0,
            ..Default::default()
        },
    );
    let (train, eval) = workload.split(0.75, true);
    assert!(!train.is_empty() && !eval.is_empty());
    let mut cfg = ModelConfig::small();
    cfg.epochs = 25;
    let mut model = QPSeeker::new(&db, cfg);
    model.fit(&train).expect("training succeeds");

    // Held-out queries of moderate size: a tiny training corpus cannot
    // teach 16-level cost propagation, so the CI-scale claim is about the
    // regime the model can learn here (the standard-scale bench covers the
    // heavy queries).
    let mut seen = std::collections::HashSet::new();
    let queries: Vec<&Query> = eval
        .iter()
        .filter(|q| q.query.num_joins() <= 8 && seen.insert(q.query.id.clone()))
        .map(|q| &q.query)
        .take(5)
        .collect();
    assert!(!queries.is_empty(), "eval split must contain moderate queries");

    let ex = Executor::new(&db);
    let planner =
        MctsPlanner::new(MctsConfig { budget_ms: 1e9, max_simulations: 200, ..Default::default() });
    let mut rng = StdRng::seed_from_u64(1);
    let mut mcts_total = 0.0;
    let mut random_total = 0.0;
    for q in queries {
        let res = planner.plan(&model, q);
        mcts_total += ex.execute(&res.plan).time_ms;
        // Average of several random plans.
        let mut acc = 0.0;
        for _ in 0..5 {
            acc += ex.execute(&random_plan(q, &mut rng)).time_ms;
        }
        random_total += acc / 5.0;
    }
    assert!(
        mcts_total < random_total,
        "MCTS plans ({mcts_total:.1} ms) must beat average random plans ({random_total:.1} ms)"
    );
}

#[test]
fn pipeline_is_deterministic_from_the_seed() {
    let run = || {
        let db = db();
        let w = synthetic::generate(&db, &SyntheticConfig { n_queries: 25, seed: 3 });
        let refs: Vec<&Qep> = w.qeps.iter().collect();
        let mut model = QPSeeker::new(&db, ModelConfig::small());
        let report = model.fit(&refs).expect("training succeeds");
        let p = model.predict(&w.qeps[0].query, &w.qeps[0].plan);
        (report.epoch_losses, p.runtime_ms)
    };
    let (l1, p1) = run();
    let (l2, p2) = run();
    assert_eq!(l1, l2, "training losses must be bit-identical across runs");
    assert_eq!(p1, p2, "predictions must be bit-identical across runs");
}

#[test]
fn injected_plans_execute_identically_to_directly_built_plans() {
    let db = db();
    let w = synthetic::generate(&db, &SyntheticConfig { n_queries: 10, seed: 9 });
    let ex = Executor::new(&db);
    for qep in &w.qeps {
        if !qep.plan.is_left_deep() {
            continue;
        }
        let spec = LeftDeepSpec::from_plan(&qep.plan).expect("left-deep");
        let compiled = spec.compile(&qep.query).expect("compiles");
        let a = ex.execute(&qep.plan);
        let b = ex.execute(&compiled);
        assert_eq!(a.rows, b.rows);
        assert_eq!(a.time_ms, b.time_ms);
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "trains a model over a sampled 16-join plan space; minutes in debug builds — run with --release"
)]
fn model_predictions_differentiate_good_from_catastrophic_plans() {
    let db = db();
    let workload = job::generate(
        &db,
        &JobConfig {
            n_queries: 12,
            n_templates: 5,
            target_qeps: 280,
            keep_fraction: 1.0,
            ..Default::default()
        },
    );
    let refs: Vec<&Qep> = workload.qeps.iter().collect();
    let mut cfg = ModelConfig::small();
    cfg.epochs = 10;
    let mut model = QPSeeker::new(&db, cfg);
    model.fit(&refs).expect("training succeeds");

    // For queries with at least 3 relations, compare the model's prediction
    // for an all-nested-loop plan vs an all-hash plan: across the workload,
    // nested loops over big intermediates must be predicted slower on
    // average (the model has internalized operator costs).
    let mut nl_sum = 0.0;
    let mut hash_sum = 0.0;
    let mut count = 0;
    let mut seen = std::collections::HashSet::new();
    for qep in &workload.qeps {
        if qep.query.num_relations() < 3 || !seen.insert(qep.query.id.clone()) {
            continue;
        }
        let q = &qep.query;
        let ordering: Vec<String> =
            match qpseeker_repro::workloads::enumerate_orderings(q, 1).into_iter().next() {
                Some(o) => o,
                None => continue,
            };
        let mk = |op: JoinOp| {
            LeftDeepSpec {
                scans: ordering.iter().map(|a| (a.clone(), ScanOp::SeqScan)).collect(),
                joins: vec![op; ordering.len() - 1],
            }
            .compile(q)
            .expect("valid")
        };
        nl_sum += model.predict_runtime_ms(q, &mk(JoinOp::NestedLoopJoin));
        hash_sum += model.predict_runtime_ms(q, &mk(JoinOp::HashJoin));
        count += 1;
    }
    assert!(count >= 3, "need enough multi-join queries, got {count}");
    assert!(
        nl_sum > hash_sum,
        "predicted nested-loop total ({nl_sum:.1}) should exceed hash total ({hash_sum:.1})"
    );
}
