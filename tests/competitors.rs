//! Integration tests for the competitor systems against the shared
//! substrate: every baseline must train on the same workloads QPSeeker uses
//! and produce sane outputs on held-out data.

use qpseeker_repro::baselines::{
    Bao, BaoConfig, Mscn, MscnConfig, QppNet, QppNetConfig, ZeroShot, ZeroShotConfig,
};
use qpseeker_repro::engine::prelude::*;
use qpseeker_repro::workloads::{synthetic, Qep, SyntheticConfig};

fn setup() -> (qpseeker_repro::storage::Database, qpseeker_repro::workloads::Workload) {
    let db = qpseeker_repro::storage::datagen::imdb::generate(0.06, 55);
    let w = synthetic::generate(&db, &SyntheticConfig { n_queries: 60, seed: 55 });
    (db, w)
}

#[test]
fn mscn_beats_guessing_on_held_out_queries() {
    let (db, w) = setup();
    let (train, eval): (Vec<&Qep>, Vec<&Qep>) = w.split(0.8, false);
    let mut mscn = Mscn::new(&db, MscnConfig { epochs: 20, ..Default::default() });
    let pairs: Vec<(&Query, f64)> = train.iter().map(|q| (&q.query, q.cardinality())).collect();
    mscn.fit(&pairs);
    // Compare against predicting the training median for everything.
    let mut cards: Vec<f64> = train.iter().map(|q| q.cardinality()).collect();
    cards.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median_guess = cards[cards.len() / 2];
    let qerr = |p: f64, t: f64| (p.max(1.0) / t.max(1.0)).max(t.max(1.0) / p.max(1.0));
    let mut model_err = 0.0;
    let mut guess_err = 0.0;
    for q in &eval {
        model_err += qerr(mscn.predict(&q.query), q.cardinality()).ln();
        guess_err += qerr(median_guess, q.cardinality()).ln();
    }
    assert!(
        model_err < guess_err,
        "MSCN (gmean log q-err {model_err:.2}) must beat the median guess ({guess_err:.2})"
    );
}

#[test]
fn qppnet_responds_to_plan_structure() {
    let (db, w) = setup();
    let triples: Vec<(&Query, &PlanNode, f64)> =
        w.qeps.iter().map(|q| (&q.query, &q.plan, q.runtime_ms())).collect();
    let mut net = QppNet::new(&db, QppNetConfig { epochs: 10, ..Default::default() });
    net.fit(&triples);
    // Any 2-relation query: nested loop vs hash join predictions differ.
    let qep = w.qeps.iter().find(|q| q.query.num_relations() == 2).expect("has joins");
    let q = &qep.query;
    let mk = |op| {
        PlanNode::join(
            q,
            op,
            PlanNode::scan(q, &q.relations[0].alias, ScanOp::SeqScan),
            PlanNode::scan(q, &q.relations[1].alias, ScanOp::SeqScan),
        )
    };
    let h = net.predict(q, &mk(JoinOp::HashJoin));
    let n = net.predict(q, &mk(JoinOp::NestedLoopJoin));
    assert_ne!(h, n, "different operators must route through different neural units");
}

#[test]
fn zeroshot_transfers_to_both_databases() {
    let mut zs = ZeroShot::new(ZeroShotConfig {
        n_databases: 3,
        queries_per_db: 15,
        epochs: 6,
        ..Default::default()
    });
    zs.pretrain();
    let (imdb, w) = setup();
    let stack = qpseeker_repro::storage::datagen::stack::generate(0.05, 4);
    // IMDb plan.
    let qep = &w.qeps[0];
    let pred = zs.predict(&imdb, &qep.query, &qep.plan);
    assert!(pred.is_finite() && pred >= 0.0);
    // Stack plan from its optimizer (schema never seen at pretraining).
    let mut q = Query::new("s");
    q.relations = vec![RelRef::new("question"), RelRef::new("answer")];
    q.joins = vec![JoinPred {
        left: ColRef::new("answer", "question_id"),
        right: ColRef::new("question", "id"),
    }];
    let plan = PgOptimizer::new(&stack).plan(&q);
    let pred2 = zs.predict(&stack, &q, &plan);
    assert!(pred2.is_finite() && pred2 >= 0.0);
}

#[test]
fn bao_arm_restrictions_are_respected_end_to_end() {
    let (db, w) = setup();
    let mut bao = Bao::new(&db, BaoConfig { epochs: 3, ..Default::default() });
    let queries: Vec<&Query> = w.qeps.iter().map(|q| &q.query).take(20).collect();
    bao.train(&queries);
    let ex = Executor::new(&db);
    for q in queries.iter().take(6) {
        let (plan, arm) = bao.plan(q);
        assert!(arm < bao.num_arms());
        // The plan must execute correctly.
        let res = ex.execute(&plan);
        assert!(res.time_ms > 0.0);
    }
}
