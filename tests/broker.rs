//! Cross-request continuous batching: the shared `EvalBroker` must be
//! *invisible* in every observable output.
//!
//! Three guarantees are exercised here:
//! 1. broker on/off over the same stream at 1, 2 and 4 workers chooses
//!    bitwise-identical plans and reports identical counters (after
//!    zeroing the broker-only fusion gauges) — including the eval-candidate
//!    total, which counts *work*, not batches;
//! 2. a mixed multi-tenant stream — several lanes sharing one model `Arc`,
//!    one lane running the risk-aware strategy — serves identical plans
//!    with the broker fusing rows across tenant lanes;
//! 3. an injected stall that lands on a request inside a fused batch
//!    burns only *that* request's retry budget: every disposition and
//!    per-request failure trace is identical to the broker-off run.
//!
//! Set `QPS_CHAOS_SEED` to vary the fault schedules (CI sweeps seeds).

use qpseeker_repro::core::prelude::*;
use qpseeker_repro::engine::plan::PlanNode;
use qpseeker_repro::storage::{Database, FaultConfig};
use qpseeker_repro::workloads::{
    synthetic, tenants, Qep, SyntheticConfig, TenantStreamConfig, TenantStreamItem,
};
use std::sync::{Arc, OnceLock};

fn chaos_seed() -> u64 {
    std::env::var("QPS_CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0)
}

fn shared_db() -> &'static Arc<Database> {
    static DB: OnceLock<Arc<Database>> = OnceLock::new();
    DB.get_or_init(|| Arc::new(qpseeker_repro::storage::datagen::imdb::generate(0.04, 2)))
}

/// One fitted model shared by every test and — in the tenant test — by
/// every lane, so fused batches genuinely cross tenant boundaries.
fn shared_model() -> Arc<QPSeeker> {
    static MODEL: OnceLock<Arc<QPSeeker>> = OnceLock::new();
    Arc::clone(MODEL.get_or_init(|| {
        let db = shared_db();
        let w = synthetic::generate(db, &SyntheticConfig { n_queries: 12, seed: 3 });
        let refs: Vec<&Qep> = w.qeps.iter().collect();
        let mut model = QPSeeker::new(db, ModelConfig::small());
        model.fit(&refs).expect("training succeeds");
        Arc::new(model)
    }))
}

fn deterministic_cfg(workers: usize, broker: Option<BrokerConfig>) -> SupervisorConfig {
    SupervisorConfig {
        serve: ServeConfig {
            mcts: MctsConfig { budget_ms: 1e9, max_simulations: 16, ..MctsConfig::default() },
            strategy: Default::default(),
            deadline_ms: 1e12,
            max_retries: 1,
            backoff_base_ms: 0.0,
            faults: None,
        },
        window: 16,
        min_samples: 8,
        failure_threshold: 2.0, // a rate can never exceed 1.0: breaker never opens
        cooldown_queries: 8,
        probe_successes: 3,
        queue_capacity: 4096,
        service_ms: 5.0,
        workers,
        cache: None,
        broker,
    }
}

fn gentle_requests(n: usize, qseed: u64) -> Vec<QueryRequest> {
    synthetic::generate_queries(shared_db(), &SyntheticConfig { n_queries: n, seed: qseed })
        .into_iter()
        .enumerate()
        .map(|(i, (query, _sql))| QueryRequest { query, arrival_ms: i as f64, deadline_ms: 1e12 })
        .collect()
}

/// Counters with the broker-only fusion gauges zeroed: everything else —
/// admission, outcomes, probes and the eval-candidate total — must be
/// bit-for-bit independent of whether scoring went through the broker.
fn normalized(mut c: ServeCounters) -> ServeCounters {
    c.fused_batches = 0;
    c.fused_rows = 0;
    c.fused_occupancy_max = 0;
    c.broker_flush_size = 0;
    c.broker_flush_deadline = 0;
    c
}

fn served(outcomes: &[SupervisedOutcome]) -> Vec<&ServeResult> {
    outcomes
        .iter()
        .map(|o| match &o.disposition {
            Disposition::Served(r) => r,
            other => panic!("query {}: non-served disposition {other:?}", o.query_id),
        })
        .collect()
}

/// Acceptance: for every worker count, broker-on serves bitwise-identical
/// plans and predictions to broker-off, with identical normalized counters
/// and the *same* candidate-eval total — fusion changes how rows reach the
/// GEMM, never which rows exist or what they score.
#[test]
fn broker_is_invisible_in_plans_counters_and_eval_totals() {
    let db = shared_db();
    let model = shared_model();
    let stream = gentle_requests(14, 0xb40c ^ chaos_seed());

    let run = |workers: usize, broker: Option<BrokerConfig>| {
        let mut sup = Supervisor::new(deterministic_cfg(workers, broker));
        let outcomes = sup.run(db, Some(&model), &stream);
        (outcomes, sup.counters())
    };

    let (ref_outcomes, ref_counters) = run(1, None);
    assert_eq!(ref_counters.admitted, stream.len());
    assert!(ref_counters.conservation_holds(), "{ref_counters}");
    assert!(ref_counters.eval_candidates > 0, "stream must exercise neural scoring");
    let ref_served = served(&ref_outcomes);

    for workers in [1usize, 2, 4] {
        let (outcomes, counters) = run(workers, Some(BrokerConfig::default()));
        assert_eq!(
            normalized(counters),
            normalized(ref_counters),
            "broker-on counters diverged at {workers} workers"
        );
        assert_eq!(
            counters.eval_candidates, ref_counters.eval_candidates,
            "the broker changed how much scoring work happened at {workers} workers"
        );
        assert!(counters.fused_batches > 0, "broker-on must actually fuse at {workers} workers");
        assert_eq!(
            counters.fused_rows, counters.eval_candidates,
            "with the fast path on, every candidate row flows through the broker"
        );
        for (a, b) in ref_served.iter().zip(served(&outcomes)) {
            assert_eq!(a.plan, b.plan, "plan diverged under the broker at {workers} workers");
            assert_eq!(
                a.predicted_ms.map(f64::to_bits),
                b.predicted_ms.map(f64::to_bits),
                "prediction diverged under the broker at {workers} workers"
            );
            assert_eq!(a.evals, b.evals, "per-request eval count diverged");
        }
    }
}

fn to_requests(items: &[TenantStreamItem]) -> Vec<TenantRequest> {
    items
        .iter()
        .map(|i| TenantRequest {
            tenant: i.tenant.clone(),
            req: QueryRequest {
                query: i.query.clone(),
                arrival_ms: i.arrival_ms,
                deadline_ms: i.deadline_ms,
            },
        })
        .collect()
}

fn plans_of(outcomes: &[TenantOutcome], tenant: &str) -> Vec<PlanNode> {
    outcomes
        .iter()
        .filter(|o| o.tenant == tenant)
        .filter_map(|o| match &o.outcome.disposition {
            Disposition::Served(r) => Some(r.plan.clone()),
            _ => None,
        })
        .collect()
}

/// A mixed-tenant stream — three lanes over one model `Arc`, one lane on
/// the risk-aware strategy — must serve identical plans broker-on vs
/// broker-off, while the broker fuses rows *across* lane boundaries (the
/// fused-row total exceeds what any single lane contributed).
#[test]
fn tenant_lanes_fuse_across_boundaries_without_changing_plans() {
    let db = shared_db();
    let model = shared_model();
    let registry = ModelRegistry::new(usize::MAX);
    for t in ["alpha", "beta", "gamma"] {
        registry.register(t, Arc::clone(db), Arc::clone(&model));
    }
    let items = tenants::generate_stream(
        &[("alpha", db), ("beta", db), ("gamma", db)],
        &TenantStreamConfig {
            n_requests: 45,
            seed: 0x7e4a ^ chaos_seed(),
            mean_interarrival_ms: 10.0,
            repeat_p: 0.0,
            deadline_slack_ms: 1e9,
            pool_size: 15,
        },
    );
    let stream = to_requests(&items);

    let specs = || {
        vec![
            TenantSpec::new("alpha", Arc::clone(db)),
            TenantSpec::new("beta", Arc::clone(db))
                .with_strategy(StrategyConfig { risk_lambda: 0.5, ..StrategyConfig::default() }),
            TenantSpec::new("gamma", Arc::clone(db)).with_weight(2.0),
        ]
    };
    let run = |broker: Option<BrokerConfig>| {
        let mut base = deterministic_cfg(2, broker);
        base.serve.mcts.max_simulations = 12;
        let mut sup = MultiTenantSupervisor::new(MultiTenantConfig { base, cache: None }, specs());
        let outcomes = sup.run(&registry, &stream);
        let merged = sup.merged_counters();
        assert!(merged.conservation_holds(), "{merged}");
        (outcomes, merged)
    };

    let (off_outcomes, off_counters) = run(None);
    let (on_outcomes, on_counters) = run(Some(BrokerConfig::default()));

    assert_eq!(on_outcomes.len(), stream.len());
    for (o, r) in on_outcomes.iter().zip(&stream) {
        assert_eq!(o.tenant, r.tenant, "outcomes stay in input order under the broker");
    }
    for t in ["alpha", "beta", "gamma"] {
        let a = plans_of(&off_outcomes, t);
        let b = plans_of(&on_outcomes, t);
        assert!(!a.is_empty(), "tenant {t} served nothing");
        assert_eq!(a, b, "tenant {t}: plans differ broker-on vs broker-off");
    }
    assert_eq!(
        normalized(on_counters),
        normalized(off_counters),
        "merged counters diverged under the broker"
    );
    assert!(on_counters.fused_batches > 0, "the tenant run must fuse");
    assert_eq!(
        on_counters.fused_rows, on_counters.eval_candidates,
        "every candidate row crossed the shared broker"
    );
    // Rows per fused batch beat any single lane's per-session batching: the
    // max observed occupancy can only exceed the per-session `batch_eval`
    // ceiling if rows from different submitters landed in one forward.
    let per_session = MctsConfig::default().batch_eval;
    assert!(
        on_counters.fused_occupancy_max > per_session,
        "max fused occupancy {} never exceeded one session's batch_eval {per_session}: \
         no cross-session fusion happened",
        on_counters.fused_occupancy_max
    );
}

/// Fate isolation: a stall injected into a request whose rows were scored
/// inside a *shared* fused batch must burn only that request's retry
/// budget. Every disposition, attempt count and failure trace is identical
/// to the broker-off run — neighbours in the batch never observe the fault.
#[test]
fn stalls_inside_fused_batches_fail_only_their_own_requests() {
    let db = shared_db();
    let model = shared_model();
    let stream = gentle_requests(24, 0x57a11 ^ chaos_seed());

    let run = |broker: Option<BrokerConfig>| {
        let mut cfg = deterministic_cfg(2, broker);
        cfg.serve.faults = Some(FaultConfig {
            seed: 0xfa7e ^ chaos_seed(),
            inference_stall_p: 0.4,
            ..FaultConfig::default()
        });
        let mut sup = Supervisor::new(cfg);
        let outcomes = sup.run(db, Some(&model), &stream);
        (outcomes, sup.counters())
    };

    let (off, off_counters) = run(None);
    let (on, on_counters) = run(Some(BrokerConfig::default()));
    assert!(off_counters.conservation_holds(), "{off_counters}");
    assert!(on_counters.conservation_holds(), "{on_counters}");
    assert_eq!(
        normalized(on_counters),
        normalized(off_counters),
        "stall accounting diverged under the broker"
    );
    // The schedule must actually stall something, and something must survive
    // on the neural path — otherwise fate isolation is vacuous.
    assert!(off_counters.served_classical > 0, "p=0.4 stalls must degrade some requests");
    assert!(off_counters.served_neural > 0, "most requests must survive their fused batches");

    assert_eq!(on.len(), off.len());
    for (a, b) in off.iter().zip(&on) {
        assert_eq!(a.query_id, b.query_id);
        let (ra, rb) = match (&a.disposition, &b.disposition) {
            (Disposition::Served(ra), Disposition::Served(rb)) => (ra, rb),
            other => panic!("query {}: unexpected dispositions {other:?}", a.query_id),
        };
        assert_eq!(ra.served_by, rb.served_by, "query {}: fate diverged", a.query_id);
        assert_eq!(ra.attempts, rb.attempts, "query {}: retry budget diverged", a.query_id);
        // Compare failure *kinds*, not payloads: `DeadlineExceeded` carries
        // genuinely measured planning milliseconds, which vary run to run
        // with or without the broker. Which attempts failed, and why, must
        // not.
        let kinds = |r: &ServeResult| {
            r.attempt_failures.iter().map(std::mem::discriminant).collect::<Vec<_>>()
        };
        assert_eq!(
            kinds(ra),
            kinds(rb),
            "query {}: failure trace diverged — a neighbour's stall leaked",
            a.query_id
        );
        assert_eq!(ra.plan, rb.plan, "query {}: plan diverged under faults", a.query_id);
    }
}
