//! Batched-evaluation equality suite.
//!
//! The MCTS batched scoring path (`QPSeeker::predict_batch`) promises that
//! scoring K candidate plans in one forward pass is **bitwise identical** to
//! scoring them one at a time — the invariant that lets the planner defer
//! rollouts into batches without changing any plan choice, and that keeps
//! PR4's cross-worker plan-equality guarantee intact with `batch_eval` on.
//! This file property-tests that promise over random left-deep plan pools.

use proptest::prelude::*;
use qpseeker_repro::core::prelude::*;
use qpseeker_repro::engine::inject::LeftDeepSpec;
use qpseeker_repro::engine::plan::{JoinOp, PlanNode, ScanOp};
use qpseeker_repro::engine::query::{ColRef, JoinPred, Query, RelRef};
use qpseeker_repro::storage::Database;
use qpseeker_repro::workloads::{synthetic, Qep, SyntheticConfig};
use std::sync::{Arc, OnceLock};

fn shared_db() -> &'static Arc<Database> {
    static DB: OnceLock<Arc<Database>> = OnceLock::new();
    DB.get_or_init(|| Arc::new(qpseeker_repro::storage::datagen::imdb::generate(0.04, 2)))
}

fn shared_model() -> &'static QPSeeker {
    static MODEL: OnceLock<QPSeeker> = OnceLock::new();
    MODEL.get_or_init(|| {
        let db = shared_db();
        let w = synthetic::generate(db, &SyntheticConfig { n_queries: 12, seed: 3 });
        let refs: Vec<&Qep> = w.qeps.iter().collect();
        let mut model = QPSeeker::new(db, ModelConfig::small());
        model.fit(&refs).expect("training succeeds");
        model
    })
}

/// A 3-relation star query over the IMDb FK schema: movie_info and
/// movie_keyword both join title.
fn star_query() -> Query {
    let mut q = Query::new("batched-eval-star");
    for t in ["title", "movie_info", "movie_keyword"] {
        q.relations.push(RelRef::new(t));
    }
    for t in ["movie_info", "movie_keyword"] {
        q.joins
            .push(JoinPred { left: ColRef::new(t, "movie_id"), right: ColRef::new("title", "id") });
    }
    q
}

/// Every connected left-deep relation order for the star (the hub `title`
/// must be joined by the second step at the latest).
const ORDERS: [[&str; 3]; 4] = [
    ["title", "movie_info", "movie_keyword"],
    ["title", "movie_keyword", "movie_info"],
    ["movie_info", "title", "movie_keyword"],
    ["movie_keyword", "title", "movie_info"],
];

/// Strategy: one random left-deep plan — a valid relation order plus
/// independently chosen scan and join operators.
fn plan_strategy() -> impl Strategy<Value = LeftDeepSpec> {
    (
        0usize..ORDERS.len(),
        proptest::collection::vec(0usize..ScanOp::ALL.len(), 3),
        proptest::collection::vec(0usize..JoinOp::ALL.len(), 2),
    )
        .prop_map(|(ord, scans, joins)| LeftDeepSpec {
            scans: ORDERS[ord]
                .iter()
                .zip(&scans)
                .map(|(rel, &s)| (rel.to_string(), ScanOp::ALL[s]))
                .collect(),
            joins: joins.iter().map(|&j| JoinOp::ALL[j]).collect(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `predict_batch` over a random pool of 2..24 plans equals per-plan
    /// `predict` bit for bit, in all three predicted quantities. Duplicate
    /// plans in the pool are deliberately allowed — the batch path must not
    /// care.
    #[test]
    fn batched_predictions_bitwise_equal_scalar(
        specs in proptest::collection::vec(plan_strategy(), 2..24)
    ) {
        let model = shared_model();
        let query = star_query();
        let plans: Vec<PlanNode> = specs
            .iter()
            .map(|s| s.compile(&query).expect("valid left-deep spec"))
            .collect();
        let refs: Vec<&PlanNode> = plans.iter().collect();
        let batched = model.predict_batch(&query, &refs);
        prop_assert_eq!(batched.len(), plans.len());
        for (i, plan) in plans.iter().enumerate() {
            let scalar = model.predict(&query, plan);
            prop_assert_eq!(
                batched[i].runtime_ms.to_bits(), scalar.runtime_ms.to_bits(),
                "plan {}: batched runtime {} vs scalar {}",
                i, batched[i].runtime_ms, scalar.runtime_ms);
            prop_assert_eq!(batched[i].cost.to_bits(), scalar.cost.to_bits(), "plan {} cost", i);
            prop_assert_eq!(
                batched[i].cardinality.to_bits(), scalar.cardinality.to_bits(),
                "plan {} cardinality", i);
        }
    }
}
