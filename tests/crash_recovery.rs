//! Crash-recovery suite for the durable-training layer.
//!
//! Three guarantees are exercised end to end:
//! 1. a training run killed (via injected crash-point fault) at *any* epoch
//!    boundary and resumed from its journal produces bitwise-identical
//!    parameters to an uninterrupted run, for serial and data-parallel
//!    training alike;
//! 2. recovery never loads a corrupt snapshot: torn writes are rejected by
//!    the checksum envelope and recovery falls back to the newest valid
//!    snapshot, across a 100-iteration seeded sweep with zero panics;
//! 3. journals that cannot be used — all-corrupt directories, snapshots from
//!    a different config or dataset — surface as typed errors, never panics.
//!
//! `QPS_CHAOS_SEED` offsets every fault schedule so CI can sweep seeds.

use qpseeker_repro::core::prelude::*;
use qpseeker_repro::storage::{Database, FaultConfig, FaultInjector};
use qpseeker_repro::workloads::{synthetic, Qep, SyntheticConfig, Workload};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// CI seed offset (see .github/workflows: the chaos job sweeps 3 seeds).
fn chaos_seed() -> u64 {
    std::env::var("QPS_CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0)
}

fn shared_db() -> &'static Arc<Database> {
    static DB: OnceLock<Arc<Database>> = OnceLock::new();
    DB.get_or_init(|| Arc::new(qpseeker_repro::storage::datagen::imdb::generate(0.04, 2)))
}

fn shared_workload() -> &'static Workload {
    static W: OnceLock<Workload> = OnceLock::new();
    W.get_or_init(|| synthetic::generate(shared_db(), &SyntheticConfig { n_queries: 10, seed: 5 }))
}

/// Small, fast config; `epochs` and `train_threads` are the sweep knobs.
fn train_cfg(epochs: usize, train_threads: usize) -> ModelConfig {
    let mut cfg = ModelConfig::small();
    cfg.epochs = epochs;
    cfg.train_threads = train_threads;
    cfg
}

/// Unique scratch journal directory per test case.
fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("qps-crashrec-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Every parameter scalar, as raw bits — the "bitwise identical" currency.
fn param_bits(model: &QPSeeker) -> Vec<u32> {
    model.store.iter().flat_map(|(_, p)| p.value.data().iter().map(|v| v.to_bits())).collect()
}

/// Train uninterrupted (no journal) and return the final parameter bits.
fn baseline_bits(epochs: usize, threads: usize) -> Vec<u32> {
    let refs: Vec<&Qep> = shared_workload().qeps.iter().collect();
    let mut model = QPSeeker::new(shared_db(), train_cfg(epochs, threads));
    model.fit(&refs).expect("training succeeds");
    param_bits(&model)
}

/// Kill a journaled run at durable write `k` (so `k` epoch snapshots made it
/// to disk), then resume in a fresh model; return the resumed model's bits.
fn crash_at_write_then_resume(dir: &PathBuf, epochs: usize, threads: usize, k: u64) -> Vec<u32> {
    let refs: Vec<&Qep> = shared_workload().qeps.iter().collect();

    let injector =
        FaultInjector::new(FaultConfig { crash_after_writes: Some(k), ..FaultConfig::default() });
    let journal =
        SnapshotStore::create(dir, "epoch", 8).expect("journal dir").with_faults(Some(injector));
    let mut doomed = QPSeeker::new(shared_db(), train_cfg(epochs, threads));
    let err = doomed.fit_resumable(&refs, &journal).expect_err("crash point must fire");
    assert!(
        matches!(err, CoreError::InjectedCrash { .. }),
        "expected an injected crash, got {err}"
    );
    assert!(err.is_transient(), "a crash is transient — a restart may succeed");

    // A restarted process: fresh model, same journal directory, no faults.
    let journal = SnapshotStore::create(dir, "epoch", 8).expect("journal dir");
    let mut resumed = QPSeeker::new(shared_db(), train_cfg(epochs, threads));
    resumed.fit_resumable(&refs, &journal).expect("resumed training succeeds");
    param_bits(&resumed)
}

/// The tentpole determinism guarantee: kill at *every* epoch boundary
/// (including before the first snapshot lands) and resume; the final
/// parameters must be bitwise identical to an uninterrupted run.
#[test]
fn kill_at_every_epoch_resumes_to_bitwise_identical_parameters() {
    let epochs = 3;
    let baseline = baseline_bits(epochs, 1);
    assert!(!baseline.is_empty());
    // Write k crashes after k snapshots are durable: k = 0 is a crash before
    // any snapshot (resume falls back to a fresh start), k = epochs - 1 is a
    // crash while journaling the final epoch.
    for k in 0..epochs as u64 {
        let dir = scratch(&format!("kill-k{k}"));
        let bits = crash_at_write_then_resume(&dir, epochs, 1, k);
        assert_eq!(
            bits, baseline,
            "resume after crash at write {k} diverged from the uninterrupted run"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The same guarantee holds for data-parallel training: two kill points,
/// each checked with 1 and 2 training threads (whose uninterrupted results
/// are themselves bit-identical by the merge-order design).
#[test]
fn resume_is_bitwise_identical_across_train_threads() {
    let epochs = 4;
    let baseline = baseline_bits(epochs, 1);
    assert_eq!(baseline, baseline_bits(epochs, 2), "thread count changed the baseline");
    for threads in [1usize, 2] {
        for k in [1u64, 3] {
            let dir = scratch(&format!("thr{threads}-k{k}"));
            let bits = crash_at_write_then_resume(&dir, epochs, threads, k);
            assert_eq!(
                bits, baseline,
                "threads={threads}, crash at write {k}: resumed parameters diverged"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// Journaling itself must not perturb training: a journaled run (no faults,
/// no resume) lands on the same parameters as a plain `fit`.
#[test]
fn journaling_does_not_change_training() {
    let refs: Vec<&Qep> = shared_workload().qeps.iter().collect();
    let dir = scratch("noop");
    let journal = SnapshotStore::create(&dir, "epoch", 4).expect("journal dir");
    let mut model = QPSeeker::new(shared_db(), train_cfg(3, 1));
    model.fit_resumable(&refs, &journal).expect("training succeeds");
    assert_eq!(param_bits(&model), baseline_bits(3, 1));
    let _ = std::fs::remove_dir_all(&dir);
}

/// A torn write on the newest snapshot (simulated non-atomic filesystem)
/// must not poison recovery: the checksum rejects it, the file is
/// quarantined, and training resumes from the previous valid snapshot —
/// still landing on bitwise-identical parameters.
#[test]
fn torn_newest_snapshot_falls_back_to_previous_valid_and_stays_deterministic() {
    let epochs = 3;
    let refs: Vec<&Qep> = shared_workload().qeps.iter().collect();
    let baseline = baseline_bits(epochs, 1);

    let dir = scratch("torn-newest");
    let journal = SnapshotStore::create(&dir, "epoch", 8).expect("journal dir");
    let mut first = QPSeeker::new(shared_db(), train_cfg(epochs, 1));
    first.fit_resumable(&refs, &journal).expect("training succeeds");

    // Tear the newest snapshot by hand, as a crash mid-write on a
    // non-atomic filesystem would.
    let newest = dir.join(format!("epoch-{:08}.snap", epochs));
    let sealed = std::fs::read_to_string(&newest).expect("newest snapshot exists");
    std::fs::write(&newest, &sealed[..sealed.len() / 3]).expect("tear snapshot");

    let mut resumed = QPSeeker::new(shared_db(), train_cfg(epochs, 1));
    resumed.fit_resumable(&refs, &journal).expect("resume past the torn snapshot");
    assert_eq!(param_bits(&resumed), baseline, "fallback resume diverged");
    assert!(
        dir.join(format!("epoch-{:08}.snap.corrupt", epochs)).exists(),
        "torn snapshot must be quarantined, not deleted or retried"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A journal where every snapshot is corrupt is a typed error, not a panic,
/// and every candidate ends up quarantined for inspection.
#[test]
fn all_corrupt_journal_is_a_typed_error() {
    let refs: Vec<&Qep> = shared_workload().qeps.iter().collect();
    let dir = scratch("all-corrupt");
    let journal = SnapshotStore::create(&dir, "epoch", 8).expect("journal dir");
    for seq in 1..=3u64 {
        std::fs::write(dir.join(format!("epoch-{seq:08}.snap")), "not an envelope")
            .expect("plant corrupt snapshot");
    }
    let mut model = QPSeeker::new(shared_db(), train_cfg(2, 1));
    let err = model.fit_resumable(&refs, &journal).expect_err("corrupt journal must fail");
    assert!(
        matches!(err, CoreError::NoValidSnapshot { quarantined: 3, .. }),
        "expected NoValidSnapshot with 3 quarantined, got {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A journal written under one config or dataset must be rejected (typed)
/// when resumed under another — silently mixing them would corrupt training.
#[test]
fn mismatched_journal_is_rejected_with_a_typed_error() {
    let refs: Vec<&Qep> = shared_workload().qeps.iter().collect();
    let dir = scratch("mismatch");
    let journal = SnapshotStore::create(&dir, "epoch", 4).expect("journal dir");
    let mut model = QPSeeker::new(shared_db(), train_cfg(2, 1));
    model.fit_resumable(&refs, &journal).expect("training succeeds");

    // Different config (seed participates in the fingerprint).
    let mut other_cfg = train_cfg(2, 1);
    other_cfg.seed ^= 0xdead;
    let mut other = QPSeeker::new(shared_db(), other_cfg);
    let err = other.fit_resumable(&refs, &journal).expect_err("config mismatch must fail");
    assert!(
        matches!(err, CoreError::SnapshotMismatch { field: "config", .. }),
        "expected config mismatch, got {err}"
    );

    // Same config, different dataset size.
    let fewer: Vec<&Qep> = refs[..refs.len() - 1].to_vec();
    let mut smaller = QPSeeker::new(shared_db(), train_cfg(2, 1));
    let err = smaller.fit_resumable(&fewer, &journal).expect_err("dataset mismatch must fail");
    assert!(
        matches!(err, CoreError::SnapshotMismatch { field: "dataset size", .. }),
        "expected dataset-size mismatch, got {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The rename in `write_atomic` is only durable once the parent directory
/// entry is fsynced; `fsync_dir` is that barrier and must report failures as
/// typed errors instead of swallowing them.
#[test]
fn write_atomic_fsyncs_the_parent_directory() {
    use qpseeker_repro::core::durable::fsync_dir;
    let dir = scratch("dirsync");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    // The happy path: file lands and the directory barrier succeeds.
    let target = dir.join("state.json");
    write_atomic(&target, "{\"ok\":true}", None).expect("atomic write succeeds");
    assert_eq!(std::fs::read_to_string(&target).unwrap(), "{\"ok\":true}");
    fsync_dir(&dir).expect("fsync of an existing directory succeeds");
    // A missing directory is a typed Io error, not a panic or silent no-op.
    let err = fsync_dir(&dir.join("no-such-subdir")).expect_err("missing dir must fail");
    assert!(matches!(err, CoreError::Io { .. }), "expected Io error, got {err}");
    // And write_atomic into a missing parent surfaces the same typed error.
    let err = write_atomic(&dir.join("ghost/state.json"), "x", None)
        .expect_err("missing parent must fail");
    assert!(matches!(err, CoreError::Io { .. }), "expected Io error, got {err}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A zero-byte newest snapshot — the classic crash-between-create-and-write
/// artifact on non-atomic filesystems — must be quarantined and recovery
/// must fall back to the previous intact snapshot.
#[test]
fn zero_byte_newest_snapshot_is_quarantined_and_previous_wins() {
    let dir = scratch("zerobyte");
    let store = SnapshotStore::create(&dir, "epoch", 8).expect("journal dir");
    store.write(1, r#"{"epoch":1}"#).expect("write 1");
    store.write(2, r#"{"epoch":2}"#).expect("write 2");
    // Plant a zero-byte file as the newest snapshot (seq 3 never finished).
    std::fs::write(dir.join("epoch-00000003.snap"), "").expect("plant zero-byte file");
    let rec = store.recover().expect("recovery succeeds").expect("a snapshot survives");
    assert_eq!(rec.seq, 2, "recovery must fall back to the newest intact snapshot");
    assert_eq!(rec.payload, r#"{"epoch":2}"#);
    assert!(
        dir.join("epoch-00000003.snap.corrupt").exists(),
        "the zero-byte snapshot must be quarantined for inspection"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// An envelope sealed by a *newer* format version must surface as the typed
/// version-skew error — telling the operator to upgrade — and never be
/// misreported as checksum corruption.
#[test]
fn newer_envelope_version_is_version_skew_not_corruption() {
    use qpseeker_repro::core::durable::{open_envelope, seal_envelope, SNAPSHOT_VERSION};
    let future = SNAPSHOT_VERSION + 1;
    let sealed = seal_envelope(r#"{"from":"the future"}"#, future);
    let err = open_envelope(&sealed, SNAPSHOT_VERSION).expect_err("future version must fail");
    match err {
        CoreError::CheckpointVersion { found, supported } => {
            assert_eq!(found, future);
            assert_eq!(supported, SNAPSHOT_VERSION);
        }
        other => panic!("expected CheckpointVersion, got {other}"),
    }
    // The same skew through the snapshot store quarantines rather than loads.
    let dir = scratch("verskew");
    let store = SnapshotStore::create(&dir, "epoch", 4).expect("journal dir");
    store.write(1, r#"{"epoch":1}"#).expect("write 1");
    std::fs::write(dir.join("epoch-00000002.snap"), seal_envelope(r#"{"epoch":2}"#, future))
        .expect("plant future snapshot");
    let rec = store.recover().expect("recovery succeeds").expect("a snapshot survives");
    assert_eq!(rec.seq, 1, "future-version snapshot must not be loaded");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The acceptance sweep: 100 seeded iterations of snapshot-store writes
/// under torn-write faults. Recovery must never surface a corrupt payload —
/// it either returns the newest snapshot that was durably written intact, or
/// a typed error when nothing valid survived. Zero panics by construction.
#[test]
fn torn_write_sweep_100_iterations_never_recovers_corrupt_state() {
    let base = 0x70b2 ^ chaos_seed();
    for i in 0..100u64 {
        let dir = scratch(&format!("sweep-{i}"));
        let injector = FaultInjector::new(FaultConfig {
            seed: base ^ (i.wrapping_mul(0x9e37)),
            torn_write_p: 0.35,
            ..FaultConfig::default()
        });
        let store = SnapshotStore::create(&dir, "epoch", 8)
            .expect("journal dir")
            .with_faults(Some(injector));

        // Write a run of snapshots; torn ones error like a kill and leave a
        // truncated file in place. Track which sequence numbers landed whole.
        let mut intact: Vec<u64> = Vec::new();
        for seq in 1..=6u64 {
            let payload = format!(r#"{{"epoch":{seq},"iter":{i}}}"#);
            match store.write(seq, &payload) {
                Ok(_) => intact.push(seq),
                Err(CoreError::InjectedCrash { .. }) => {}
                Err(other) => panic!("iter {i}, seq {seq}: unexpected error {other}"),
            }
        }

        match store.recover() {
            Ok(Some(rec)) => {
                let newest = *intact.last().unwrap_or_else(|| {
                    panic!("iter {i}: recovered seq {} but no write survived", rec.seq)
                });
                assert_eq!(
                    rec.seq, newest,
                    "iter {i}: recovery must return the newest intact snapshot"
                );
                assert_eq!(
                    rec.payload,
                    format!(r#"{{"epoch":{newest},"iter":{i}}}"#),
                    "iter {i}: recovered payload does not match what was written"
                );
            }
            Ok(None) => {
                assert!(intact.is_empty(), "iter {i}: intact snapshots exist but none found");
            }
            Err(CoreError::NoValidSnapshot { .. }) => {
                assert!(
                    intact.is_empty(),
                    "iter {i}: valid snapshots were on disk but recovery rejected all"
                );
            }
            Err(other) => panic!("iter {i}: unexpected recovery error {other}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
