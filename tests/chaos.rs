//! Chaos suite: deterministic fault injection across the whole stack.
//!
//! Three guarantees are exercised here, end to end:
//! 1. the executor under any fault schedule either completes or returns a
//!    typed error — it never panics;
//! 2. `plan_with_fallback` always produces a valid, executable plan, and
//!    records why whenever it degrades to the classical optimizer;
//! 3. corrupted checkpoints are rejected at load with a typed error.

use proptest::prelude::*;
use qpseeker_repro::core::prelude::*;
use qpseeker_repro::engine::prelude::*;
use qpseeker_repro::storage::{Database, FaultConfig};
use qpseeker_repro::workloads::{synthetic, Qep, SyntheticConfig};
use std::sync::{Arc, OnceLock};

fn shared_db() -> &'static Arc<Database> {
    static DB: OnceLock<Arc<Database>> = OnceLock::new();
    DB.get_or_init(|| Arc::new(qpseeker_repro::storage::datagen::imdb::generate(0.04, 2)))
}

/// One fitted model shared by every chaos case (training is the slow part).
/// Planning is `&self` since the tape-free fast path landed, so no lock is
/// needed around it.
fn shared_model() -> &'static QPSeeker {
    static MODEL: OnceLock<QPSeeker> = OnceLock::new();
    MODEL.get_or_init(|| {
        let db = shared_db();
        let w = synthetic::generate(db, &SyntheticConfig { n_queries: 12, seed: 3 });
        let refs: Vec<&Qep> = w.qeps.iter().collect();
        let mut model = QPSeeker::new(db, ModelConfig::small());
        model.fit(&refs).expect("training succeeds");
        model
    })
}

fn chaos_queries(n: usize, seed: u64) -> Vec<Query> {
    synthetic::generate_queries(shared_db(), &SyntheticConfig { n_queries: n, seed })
        .into_iter()
        .map(|(q, _sql)| q)
        .collect()
}

fn quick_serve_cfg(faults: Option<FaultConfig>) -> ServeConfig {
    ServeConfig {
        mcts: MctsConfig { budget_ms: 10.0, max_simulations: 25, ..MctsConfig::default() },
        strategy: Default::default(),
        deadline_ms: 10_000.0,
        max_retries: 1,
        backoff_base_ms: 0.0,
        faults,
    }
}

/// The acceptance sweep: every fault class armed at p = 0.1 over 200 seeded
/// queries. Zero panics, a valid executable plan for every query, and a
/// recorded reason for every degradation.
#[test]
fn chaos_sweep_200_queries_at_p_10() {
    let db = shared_db();
    let queries = chaos_queries(200, 0xc4a05);
    assert!(queries.len() >= 200, "sweep needs at least 200 queries");
    let model = shared_model();
    let mut served_neural = 0usize;
    let mut served_classical = 0usize;
    for (i, q) in queries.iter().enumerate() {
        let faults = FaultConfig::chaos(0x5eed ^ i as u64, 0.1);
        let cfg = quick_serve_cfg(Some(faults.clone()));
        let r = plan_with_fallback(db, q, Some(model), &cfg);
        r.plan.validate(q).unwrap_or_else(|e| panic!("query {i}: served plan invalid: {e}"));
        match r.served_by {
            ServedBy::Neural => {
                served_neural += 1;
                assert!(r.fallback_reason.is_none());
                assert!(r.predicted_ms.is_some());
            }
            ServedBy::Classical => {
                served_classical += 1;
                assert!(
                    r.fallback_reason.is_some(),
                    "query {i}: degraded without a recorded reason"
                );
                assert_eq!(
                    r.attempt_failures.len(),
                    cfg.max_retries + 1,
                    "query {i}: every failed attempt must be recorded"
                );
            }
        }
        // The served plan must also execute under the same fault schedule
        // (or fail with a typed error — never a panic).
        let exec = Executor::try_new(db).expect("executor builds").with_faults(faults);
        match exec.try_execute(&r.plan) {
            Ok(res) => assert!(res.rows > 0 || !res.nodes.is_empty()),
            Err(e) => assert!(!e.to_string().is_empty()),
        }
    }
    assert_eq!(served_neural + served_classical, queries.len());
    // At p = 0.1 per class with one retry, both paths must actually occur —
    // otherwise the sweep is not exercising degradation at all.
    assert!(served_neural > 0, "no query was served neurally");
    assert!(served_classical > 0, "no query degraded to the classical path");
}

/// NaN-poisoned weights on the tape-free fast path never panic: the fast
/// path (unlike the debug-asserting tape) propagates the NaN to the
/// prediction, the watchdog flags it as non-finite, and the query degrades
/// to the classical optimizer with a recorded reason.
#[test]
fn chaos_nan_weights_degrade_gracefully_on_fast_path() {
    let db = shared_db();
    let w = synthetic::generate(db, &SyntheticConfig { n_queries: 6, seed: 17 });
    let refs: Vec<&Qep> = w.qeps.iter().collect();
    let mut model = QPSeeker::new(db, ModelConfig::small());
    assert!(model.config.fast_inference, "presets enable the fast path");
    model.fit(&refs).expect("training succeeds");
    // Poison every parameter tensor so any forward pass yields NaN.
    let ids: Vec<_> = model.store.iter().map(|(id, _)| id).collect();
    for id in ids {
        for v in model.store.value_mut(id).data_mut() {
            *v = f32::NAN;
        }
    }
    let cfg = quick_serve_cfg(None);
    for q in chaos_queries(4, 0xfa57).iter() {
        let r = plan_with_fallback(db, q, Some(&model), &cfg);
        assert_eq!(r.served_by, ServedBy::Classical, "NaN model must not serve neurally");
        assert!(
            r.attempt_failures.iter().all(|f| matches!(f, FallbackReason::NonFinitePrediction)),
            "expected non-finite prediction failures, got {:?}",
            r.attempt_failures
        );
        r.plan.validate(q).expect("classical fallback plan is valid");
    }
}

/// Corrupted checkpoints (bit flips anywhere in the payload) are rejected
/// at load with a typed corruption error; truncations are malformed.
#[test]
fn chaos_checkpoint_corruption_is_detected() {
    let db = shared_db();
    let model = shared_model();
    let json = Checkpoint::capture(model, db).to_json().unwrap();

    let start = json.find("payload").unwrap();
    let digit_positions: Vec<usize> = json
        .char_indices()
        .skip(start)
        .filter(|(_, c)| ('1'..='8').contains(c))
        .map(|(i, _)| i)
        .collect();
    // Flip digits spread across the payload.
    for k in 0..20 {
        let pos = digit_positions[(k * digit_positions.len()) / 20];
        let mut bytes = json.clone().into_bytes();
        bytes[pos] += 1;
        let tampered = String::from_utf8(bytes).unwrap();
        match Checkpoint::from_json(&tampered) {
            Err(CoreError::CheckpointCorrupted { .. }) => {}
            Err(other) => panic!("flip at {pos}: expected corruption error, got {other}"),
            Ok(_) => panic!("flip at {pos}: tampered checkpoint was accepted"),
        }
    }
    for frac in [1, 2, 3] {
        let truncated = &json[..json.len() * frac / 4];
        assert!(Checkpoint::from_json(truncated).is_err(), "truncation to {frac}/4 was accepted");
    }
}

/// CI seed offset (see .github/workflows: the chaos job sweeps 3 seeds).
fn chaos_seed() -> u64 {
    std::env::var("QPS_CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0)
}

fn breaker_cfg(faults: Option<FaultConfig>) -> SupervisorConfig {
    SupervisorConfig {
        serve: quick_serve_cfg(faults),
        window: 8,
        min_samples: 4,
        failure_threshold: 0.5,
        cooldown_queries: 4,
        probe_successes: 2,
        queue_capacity: 64,
        service_ms: 5.0,
        workers: 1,
        cache: None,
        broker: None,
    }
}

/// Requests spaced widely enough that admission never interferes: the only
/// variable under test is the breaker.
fn spaced_requests(n: usize, qseed: u64, start_ms: f64) -> Vec<QueryRequest> {
    chaos_queries(n, qseed)
        .into_iter()
        .enumerate()
        .map(|(i, query)| {
            let arrival_ms = start_ms + i as f64 * 10.0;
            QueryRequest { query, arrival_ms, deadline_ms: arrival_ms + 1_000.0 }
        })
        .collect()
}

/// Acceptance: under a fault seed forcing 100% neural failures the
/// supervisor trips to classical-only within the window while continuing to
/// serve every admitted query; once the faults clear, half-open probes close
/// the breaker again and neural serving resumes.
#[test]
fn chaos_supervisor_trips_to_classical_and_recovers_when_faults_clear() {
    let db = shared_db();
    let model = shared_model();
    let faults = FaultConfig {
        seed: 0xb4ea ^ chaos_seed(),
        inference_nan_p: 1.0, // every neural attempt fails
        ..FaultConfig::default()
    };
    let mut sup = Supervisor::new(breaker_cfg(Some(faults)));

    // Faulted batch: the breaker must trip, yet every query is still served.
    let batch = spaced_requests(20, 0xb0e ^ chaos_seed(), 0.0);
    let outcomes = sup.run(db, Some(model), &batch);
    assert!(
        outcomes.iter().all(|o| matches!(o.disposition, Disposition::Served(_))),
        "a tripped breaker must degrade, never drop, admitted queries"
    );
    let c = sup.counters();
    assert!(c.conservation_holds(), "{c}");
    assert_eq!(c.admitted, 20);
    assert_eq!(c.total_shed(), 0);
    assert_eq!(c.served_neural, 0, "100% NaN faults must never serve neurally");
    assert_eq!(c.served_classical, 20);
    assert!(c.breaker_trips >= 1, "breaker never tripped under 100% neural failures");
    assert_ne!(
        sup.breaker_state(),
        BreakerState::Closed,
        "breaker cannot be closed while every probe fails"
    );
    // While open, degradations are marked with the breaker itself as the
    // recorded reason (not re-attempted inference).
    let breaker_open = outcomes
        .iter()
        .filter_map(|o| match &o.disposition {
            Disposition::Served(r) => r.fallback_reason.as_ref(),
            Disposition::Shed(_) | Disposition::Failed(_) => None,
        })
        .filter(|r| matches!(r, FallbackReason::BreakerOpen))
        .count();
    assert!(breaker_open >= 1, "open-breaker degradations must record BreakerOpen");

    // Clean batch: cooldown elapses, probes succeed, the breaker closes and
    // neural serving resumes.
    sup.set_faults(None);
    let batch2 = spaced_requests(20, 0xc1ea2 ^ chaos_seed(), 10_000.0);
    let outcomes2 = sup.run(db, Some(model), &batch2);
    assert!(outcomes2.iter().all(|o| matches!(o.disposition, Disposition::Served(_))));
    let c = sup.counters();
    assert!(c.conservation_holds(), "{c}");
    assert_eq!(c.admitted, 40, "every spaced query is admitted across both batches");
    assert!(c.breaker_recoveries >= 1, "breaker never recovered after faults cleared");
    assert!(c.probes >= 1, "recovery must go through half-open probes");
    assert_eq!(sup.breaker_state(), BreakerState::Closed);
    assert!(c.served_neural > 0, "neural serving must resume after recovery");
    // The last queries of the clean batch run with a closed breaker.
    let last = outcomes2.last().expect("non-empty batch");
    match &last.disposition {
        Disposition::Served(r) => assert_eq!(
            r.served_by,
            ServedBy::Neural,
            "final clean query should be served neurally, got {:?}",
            r.fallback_reason
        ),
        Disposition::Shed(reason) => panic!("final clean query shed: {reason}"),
        Disposition::Failed(why) => panic!("final clean query failed: {why}"),
    }
}

/// Acceptance: a burst beyond queue capacity sheds with a recorded reason
/// instead of blocking — and the queries that were admitted are all served.
#[test]
fn chaos_supervisor_sheds_queue_overflow_with_recorded_reason() {
    let db = shared_db();
    let model = shared_model();
    let mut cfg = breaker_cfg(None);
    cfg.queue_capacity = 2;
    cfg.service_ms = 10.0;
    let mut sup = Supervisor::new(cfg);

    // Six queries arriving at the same instant against a queue of 2.
    let burst: Vec<QueryRequest> = chaos_queries(6, 0xb1257 ^ chaos_seed())
        .into_iter()
        .map(|query| QueryRequest { query, arrival_ms: 0.0, deadline_ms: 1e9 })
        .collect();
    let outcomes = sup.run(db, Some(model), &burst);

    let mut served = 0usize;
    let mut shed_full = 0usize;
    for o in &outcomes {
        match &o.disposition {
            Disposition::Served(_) => served += 1,
            Disposition::Shed(ShedReason::QueueFull { depth }) => {
                assert_eq!(*depth, 2, "shed must record the depth that rejected it");
                shed_full += 1;
            }
            Disposition::Shed(other) => panic!("expected QueueFull, got {other}"),
            Disposition::Failed(why) => panic!("request failed past the panic boundary: {why}"),
        }
    }
    assert_eq!(served, 2, "exactly the queue capacity is admitted from a burst");
    assert_eq!(shed_full, 4);
    let c = sup.counters();
    assert_eq!(c.admitted, 2);
    assert_eq!(c.shed_queue_full, 4);
    assert_eq!(c.admitted, c.served_neural + c.served_classical);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Under an arbitrary fault schedule the executor completes or returns
    /// a typed error; it never panics. With faults off it must agree with
    /// the fault-free executor.
    #[test]
    fn executor_returns_err_never_panics(
        seed in 0u64..1_000_000,
        page_p in 0.0f64..0.4,
        spike_p in 0.0f64..0.4,
        stats_p in 0.0f64..0.4,
        budget_raw in 0u64..5_000,
        qseed in 0u64..1_000,
    ) {
        let db = shared_db();
        let queries = chaos_queries(3, qseed);
        let faults = FaultConfig {
            seed,
            page_read_p: page_p,
            latency_spike_p: spike_p,
            latency_spike_ms: 25.0,
            corrupt_stats_p: stats_p,
            // 0 means "no budget" so the schedule space covers both modes.
            row_budget: (budget_raw > 0).then_some(budget_raw),
            ..FaultConfig::default()
        };
        for q in &queries {
            let plan = PgOptimizer::new(db).plan(q);
            let exec = Executor::try_new(db).expect("executor builds").with_faults(faults.clone());
            match exec.try_execute(&plan) {
                Ok(res) => {
                    prop_assert!(res.time_ms.is_finite());
                    prop_assert!(res.cost.is_finite());
                }
                Err(e) => {
                    // Typed, displayable, and classified for retry policy.
                    prop_assert!(!e.to_string().is_empty());
                    let _ = e.is_transient();
                }
            }
            // A fault-free executor over the same plan must succeed.
            let clean = Executor::try_new(db).expect("executor builds");
            let res = clean.try_execute(&plan);
            prop_assert!(res.is_ok(), "fault-free execution failed: {}", res.err().map(|e| e.to_string()).unwrap_or_default());
        }
    }

    /// `plan_with_fallback` serves a valid plan under any inference-fault
    /// schedule, and records a reason whenever it degrades.
    #[test]
    fn fallback_always_serves_valid_plan(
        seed in 0u64..1_000_000,
        nan_p in 0.0f64..1.0,
        stall_p in 0.0f64..1.0,
        qseed in 0u64..1_000,
    ) {
        let db = shared_db();
        let queries = chaos_queries(2, qseed);
        let faults = FaultConfig {
            seed,
            inference_nan_p: nan_p,
            inference_stall_p: stall_p,
            ..FaultConfig::default()
        };
        let cfg = quick_serve_cfg(Some(faults));
        for q in &queries {
            let r = plan_with_fallback(db, q, Some(shared_model()), &cfg);
            prop_assert!(r.plan.validate(q).is_ok(), "served plan invalid");
            match r.served_by {
                ServedBy::Neural => prop_assert!(r.fallback_reason.is_none()),
                ServedBy::Classical => prop_assert!(r.fallback_reason.is_some()),
            }
            prop_assert!(r.attempts <= cfg.max_retries + 1);
        }
    }
}
