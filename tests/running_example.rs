//! The paper's §5 running example (Fig. 6), end-to-end:
//!
//! ```sql
//! select * from a, b, c where a.a1 = b.b1 and b.b2 = c.c1 and a.a2 = 1
//! plan: HashJoin(HashJoin(SeqScan(a), SeqScan(b)), SeqScan(c))
//! ```
//!
//! Steps verified: (1) query encoding, (2) plan encoding of all 5 nodes,
//! (3) QPAttention combination, (4) VAE reconstruction + dense head
//! producing the three estimates.

use qpseeker_repro::core::prelude::*;
use qpseeker_repro::engine::prelude::*;
use qpseeker_repro::storage::{
    Catalog, Column, ColumnData, ColumnMeta, Database, ForeignKey, IndexMeta, Table, TableMeta,
};
use qpseeker_repro::workloads::Qep;

/// Build the running example's 3-table database (a, b, c).
fn example_db() -> std::sync::Arc<Database> {
    let mk_meta = |name: &str, cols: &[&str]| TableMeta {
        name: name.into(),
        columns: cols
            .iter()
            .map(|c| ColumnMeta {
                name: (*c).into(),
                dtype: qpseeker_repro::storage::DataType::Int,
            })
            .collect(),
    };
    let a = Table::new(
        "a",
        vec![
            Column { name: "a1".into(), data: ColumnData::Int((0..40).collect()) },
            Column { name: "a2".into(), data: ColumnData::Int((0..40).map(|i| i % 4).collect()) },
        ],
    );
    let b = Table::new(
        "b",
        vec![
            Column { name: "b1".into(), data: ColumnData::Int((0..60).map(|i| i % 40).collect()) },
            Column { name: "b2".into(), data: ColumnData::Int((0..60).map(|i| i % 20).collect()) },
        ],
    );
    let c = Table::new(
        "c",
        vec![Column { name: "c1".into(), data: ColumnData::Int((0..20).collect()) }],
    );
    let catalog = Catalog {
        tables: vec![
            mk_meta("a", &["a1", "a2"]),
            mk_meta("b", &["b1", "b2"]),
            mk_meta("c", &["c1"]),
        ],
        foreign_keys: vec![
            ForeignKey {
                from_table: "b".into(),
                from_col: "b1".into(),
                to_table: "a".into(),
                to_col: "a1".into(),
            },
            ForeignKey {
                from_table: "b".into(),
                from_col: "b2".into(),
                to_table: "c".into(),
                to_col: "c1".into(),
            },
        ],
        indexes: vec![
            IndexMeta::for_column("a", "a1", 40, true),
            IndexMeta::for_column("b", "b1", 60, false),
            IndexMeta::for_column("c", "c1", 20, true),
        ],
    };
    std::sync::Arc::new(Database::new("example", catalog, vec![a, b, c]))
}

/// The running example's query.
fn example_query() -> Query {
    let mut q = Query::new("fig6");
    q.relations = vec![RelRef::new("a"), RelRef::new("b"), RelRef::new("c")];
    q.joins = vec![
        JoinPred { left: ColRef::new("a", "a1"), right: ColRef::new("b", "b1") },
        JoinPred { left: ColRef::new("b", "b2"), right: ColRef::new("c", "c1") },
    ];
    q.filters = vec![Filter { col: ColRef::new("a", "a2"), op: CmpOp::Eq, value: 1.0 }];
    q
}

/// The running example's plan: 1.SeqScan(a) 2.SeqScan(b) 3.HashJoin(a,b)
/// 4.SeqScan(c) 5.HashJoin(a,b,c).
fn example_plan(q: &Query) -> PlanNode {
    let sa = PlanNode::scan(q, "a", ScanOp::SeqScan);
    let sb = PlanNode::scan(q, "b", ScanOp::SeqScan);
    let ab = PlanNode::join(q, JoinOp::HashJoin, sa, sb);
    let sc = PlanNode::scan(q, "c", ScanOp::SeqScan);
    PlanNode::join(q, JoinOp::HashJoin, ab, sc)
}

#[test]
fn plan_has_the_papers_five_nodes() {
    let q = example_query();
    let plan = example_plan(&q);
    assert_eq!(plan.len(), 5);
    assert_eq!(plan.num_joins(), 2);
    assert!(plan.is_left_deep());
    assert!(plan.validate(&q).is_ok());
}

#[test]
fn executor_produces_per_node_ground_truth() {
    let db = example_db();
    let q = example_query();
    let plan = example_plan(&q);
    let res = Executor::new(&db).execute(&plan);
    assert_eq!(res.nodes.len(), 5);
    // Scan of a with a2=1 matches 10 of 40 rows.
    assert_eq!(res.nodes[0].rows, 10);
    // Everything is measured.
    for n in &res.nodes {
        assert!(n.time_ms > 0.0);
        assert!(n.cost > 0.0);
    }
}

#[test]
fn full_pipeline_trains_and_predicts_on_the_example() {
    let db = example_db();
    let q = example_query();
    let plan = example_plan(&q);

    // Build a small training set: the example QEP plus operator variants
    // (different physical plans of the same query, as sampling would give).
    let mut qeps = Vec::new();
    for join1 in JoinOp::ALL {
        for join2 in JoinOp::ALL {
            let sa = PlanNode::scan(&q, "a", ScanOp::SeqScan);
            let sb = PlanNode::scan(&q, "b", ScanOp::IndexScan);
            let ab = PlanNode::join(&q, join1, sa, sb);
            let sc = PlanNode::scan(&q, "c", ScanOp::SeqScan);
            let p = PlanNode::join(&q, join2, ab, sc);
            qeps.push(Qep::measure(&db, q.clone(), p, "fig6"));
        }
    }
    qeps.push(Qep::measure(&db, q.clone(), plan.clone(), "fig6"));

    let mut cfg = ModelConfig::small();
    cfg.epochs = 15;
    let mut model = QPSeeker::new(&db, cfg);
    let refs: Vec<&Qep> = qeps.iter().collect();
    let report = model.fit(&refs).expect("training succeeds");
    // Training must make progress on this tiny set (VAE noise makes the
    // per-epoch loss non-monotone, so compare best-so-far against epoch 0).
    let first = report.epoch_losses[0];
    let best = report.epoch_losses.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(best < first, "no training progress: first {first}, best {best}");

    // Step 4 of the running example: predictions for the encoded QEP.
    let pred = model.predict(&q, &plan);
    assert!(pred.cardinality.is_finite() && pred.cardinality >= 0.0);
    assert!(pred.cost.is_finite() && pred.cost >= 0.0);
    assert!(pred.runtime_ms.is_finite() && pred.runtime_ms >= 0.0);

    // The latent representation exists and has the configured width.
    let mu = model.latent_mu(&q, &plan);
    assert_eq!(mu.len(), ModelConfig::small().vae_latent);
}

#[test]
fn mcts_plans_the_example_query() {
    let db = example_db();
    let q = example_query();
    let mut qeps = Vec::new();
    for join1 in JoinOp::ALL {
        let sa = PlanNode::scan(&q, "a", ScanOp::SeqScan);
        let sb = PlanNode::scan(&q, "b", ScanOp::SeqScan);
        let ab = PlanNode::join(&q, join1, sa, sb);
        let sc = PlanNode::scan(&q, "c", ScanOp::SeqScan);
        let p = PlanNode::join(&q, JoinOp::HashJoin, ab, sc);
        qeps.push(Qep::measure(&db, q.clone(), p, "fig6"));
    }
    let mut model = QPSeeker::new(&db, ModelConfig::small());
    let refs: Vec<&Qep> = qeps.iter().collect();
    model.fit(&refs).expect("training succeeds");
    let planner =
        MctsPlanner::new(MctsConfig { budget_ms: 1e9, max_simulations: 50, ..Default::default() });
    let res = planner.plan(&model, &q);
    assert!(res.plan.validate(&q).is_ok());
    assert_eq!(res.plan.aliases().len(), 3);
}
