//! Tenant bulkheads, end to end: multi-tenant registry + weighted-fair
//! lanes + per-tenant breakers + the fingerprint plan cache, chaos-tested.
//!
//! The two load-bearing guarantees:
//!
//! 1. **Bulkhead containment** — faults aimed at exactly one tenant trip
//!    only that tenant's breaker, and the healthy tenants' served plans are
//!    bitwise identical to a run in which the faulting tenant never existed.
//! 2. **Cache safety** — a plan-cache hit is bitwise identical to the plan
//!    a cache-miss MCTS run would produce, and no request ever observes a
//!    mixed (old-plan, new-model) state across hot swaps, stats refreshes,
//!    or evict/reload cycles.
//!
//! The CI chaos job sweeps this file over seeds {1,2,3} via
//! `QPS_CHAOS_SEED` (see .github/workflows).

use qpseeker_repro::core::prelude::*;
use qpseeker_repro::engine::plan::PlanNode;
use qpseeker_repro::storage::{Database, FaultConfig};
use qpseeker_repro::workloads::{
    synthetic, tenants, Qep, SyntheticConfig, TenantStreamConfig, TenantStreamItem,
};
use std::sync::{Arc, OnceLock};

fn chaos_seed() -> u64 {
    std::env::var("QPS_CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0)
}

fn shared_db() -> &'static Arc<Database> {
    static DB: OnceLock<Arc<Database>> = OnceLock::new();
    DB.get_or_init(|| Arc::new(qpseeker_repro::storage::datagen::imdb::generate(0.04, 2)))
}

fn stack_db() -> &'static Arc<Database> {
    static DB: OnceLock<Arc<Database>> = OnceLock::new();
    DB.get_or_init(|| Arc::new(qpseeker_repro::storage::datagen::stack::generate(0.03, 2)))
}

/// One fitted model shared by every tenant (training is the slow part;
/// tenant identity is a registry key, not a training run).
fn shared_model() -> Arc<QPSeeker> {
    static MODEL: OnceLock<Arc<QPSeeker>> = OnceLock::new();
    Arc::clone(MODEL.get_or_init(|| {
        let db = shared_db();
        let w = synthetic::generate(db, &SyntheticConfig { n_queries: 12, seed: 3 });
        let refs: Vec<&Qep> = w.qeps.iter().collect();
        let mut model = QPSeeker::new(db, ModelConfig::small());
        model.fit(&refs).expect("training succeeds");
        Arc::new(model)
    }))
}

/// A second, distinct model (one extra fit step) for hot-swap tests.
fn swapped_model() -> Arc<QPSeeker> {
    static MODEL: OnceLock<Arc<QPSeeker>> = OnceLock::new();
    Arc::clone(MODEL.get_or_init(|| {
        let db = shared_db();
        let w = synthetic::generate(db, &SyntheticConfig { n_queries: 12, seed: 21 });
        let refs: Vec<&Qep> = w.qeps.iter().collect();
        let mut model = QPSeeker::new(db, ModelConfig::small());
        model.fit(&refs).expect("training succeeds");
        Arc::new(model)
    }))
}

fn base_cfg() -> SupervisorConfig {
    SupervisorConfig {
        serve: ServeConfig {
            mcts: MctsConfig { budget_ms: 1e9, max_simulations: 12, ..MctsConfig::default() },
            strategy: Default::default(),
            deadline_ms: 1e12,
            max_retries: 1,
            backoff_base_ms: 0.0,
            faults: None,
        },
        window: 8,
        min_samples: 4,
        failure_threshold: 0.5,
        cooldown_queries: 4,
        probe_successes: 2,
        queue_capacity: 4096,
        service_ms: 5.0,
        workers: 1,
        cache: None,
        broker: None,
    }
}

fn to_requests(items: &[TenantStreamItem]) -> Vec<TenantRequest> {
    items
        .iter()
        .map(|i| TenantRequest {
            tenant: i.tenant.clone(),
            req: QueryRequest {
                query: i.query.clone(),
                arrival_ms: i.arrival_ms,
                deadline_ms: i.deadline_ms,
            },
        })
        .collect()
}

/// Served plans of one tenant, in stream order.
fn plans_of(outcomes: &[TenantOutcome], tenant: &str) -> Vec<PlanNode> {
    outcomes
        .iter()
        .filter(|o| o.tenant == tenant)
        .filter_map(|o| match &o.outcome.disposition {
            Disposition::Served(r) => Some(r.plan.clone()),
            _ => None,
        })
        .collect()
}

fn assert_all_conserved(sup: &MultiTenantSupervisor) {
    for (tenant, c) in sup.counters() {
        assert!(c.conservation_holds(), "conservation broken for tenant {tenant}: {c}");
    }
    assert!(sup.merged_counters().conservation_holds(), "merged conservation broken");
}

/// A stream over two healthy tenants plus one chaos target, every tenant
/// drawing from the same seeded pool so the healthy traffic is identical
/// with and without the chaos tenant present.
fn three_tenant_stream(seed: u64, n: usize) -> Vec<TenantRequest> {
    let db = shared_db();
    let items = tenants::generate_stream(
        &[("alpha", db), ("beta", db), ("chaos", db)],
        &TenantStreamConfig {
            n_requests: n,
            seed,
            mean_interarrival_ms: 20.0,
            repeat_p: 0.3,
            deadline_slack_ms: 1e9,
            pool_size: 10,
        },
    );
    to_requests(&items)
}

/// Satellite: one tenant under p=1 inference panics and NaN poisoning —
/// only its breaker opens, and the healthy tenants' plans are bitwise
/// identical to a run where the faulty tenant's traffic never existed.
#[test]
fn faults_on_one_tenant_never_leak_into_another() {
    let db = shared_db();
    let model = shared_model();
    let registry = ModelRegistry::new(usize::MAX);
    for t in ["alpha", "beta", "chaos"] {
        registry.register(t, Arc::clone(db), Arc::clone(&model));
    }
    let stream = three_tenant_stream(0xb01d ^ chaos_seed(), 90);

    let chaos_faults = FaultConfig {
        seed: 0xdead ^ chaos_seed(),
        inference_panic_p: 1.0,
        inference_nan_p: 1.0,
        ..FaultConfig::default()
    };
    let specs = |with_chaos: bool| {
        let mut v = vec![
            TenantSpec::new("alpha", Arc::clone(db)),
            TenantSpec::new("beta", Arc::clone(db)).with_weight(2.0),
        ];
        if with_chaos {
            v.push(TenantSpec::new("chaos", Arc::clone(db)).with_faults(chaos_faults.clone()));
        }
        v
    };

    // Run A: all three tenants, chaos tenant fully faulted.
    let mut sup_a = MultiTenantSupervisor::new(
        MultiTenantConfig { base: base_cfg(), cache: None },
        specs(true),
    );
    let outcomes_a = sup_a.run(&registry, &stream);
    assert_all_conserved(&sup_a);

    let breakers = sup_a.breaker_states();
    assert_eq!(breakers["chaos"], BreakerState::Open, "p=1 faults must trip the breaker");
    assert_eq!(breakers["alpha"], BreakerState::Closed, "alpha's breaker must stay closed");
    assert_eq!(breakers["beta"], BreakerState::Closed, "beta's breaker must stay closed");

    let per = sup_a.counters();
    assert!(per["chaos"].breaker_trips >= 1);
    assert!(per["chaos"].served_classical > 0, "chaos tenant degrades, never errors out");
    assert_eq!(per["alpha"].breaker_trips, 0);
    assert_eq!(per["beta"].breaker_trips, 0);
    assert_eq!(
        per["alpha"].served_classical + per["beta"].served_classical,
        0,
        "healthy tenants keep the neural path throughout"
    );

    // Run B: the chaos tenant never existed; its traffic is filtered out.
    let healthy: Vec<TenantRequest> =
        stream.iter().filter(|r| r.tenant != "chaos").cloned().collect();
    let mut sup_b = MultiTenantSupervisor::new(
        MultiTenantConfig { base: base_cfg(), cache: None },
        specs(false),
    );
    let outcomes_b = sup_b.run(&registry, &healthy);
    assert_all_conserved(&sup_b);

    for t in ["alpha", "beta"] {
        let a = plans_of(&outcomes_a, t);
        let b = plans_of(&outcomes_b, t);
        assert!(!a.is_empty(), "tenant {t} served nothing");
        assert_eq!(a, b, "tenant {t}: plans differ with/without the faulty neighbour");
    }
}

/// Plan-cache acceptance: on a fault-free stream with verbatim re-issues,
/// the cached run produces bitwise-identical plans to the uncached run and
/// actually hits.
#[test]
fn cache_hits_are_bitwise_identical_to_mcts() {
    let db = shared_db();
    let model = shared_model();
    let registry = ModelRegistry::new(usize::MAX);
    registry.register("alpha", Arc::clone(db), Arc::clone(&model));
    registry.register("beta", Arc::clone(db), Arc::clone(&model));

    let items = tenants::generate_stream(
        &[("alpha", db), ("beta", db)],
        &TenantStreamConfig {
            n_requests: 70,
            seed: 0xcace ^ chaos_seed(),
            mean_interarrival_ms: 20.0,
            repeat_p: 0.5,
            deadline_slack_ms: 1e9,
            pool_size: 8,
        },
    );
    let stream = to_requests(&items);
    let specs =
        || vec![TenantSpec::new("alpha", Arc::clone(db)), TenantSpec::new("beta", Arc::clone(db))];

    let cache = Arc::new(PlanCache::new(8, 256));
    let mut cached = MultiTenantSupervisor::new(
        MultiTenantConfig { base: base_cfg(), cache: Some(Arc::clone(&cache)) },
        specs(),
    );
    let outcomes_cached = cached.run(&registry, &stream);
    assert_all_conserved(&cached);
    let merged = cached.merged_counters();
    assert!(merged.cache_hits > 0, "repeat_p=0.5 over 70 requests must hit: {merged}");
    assert!(cache.stats().hits > 0);

    let mut uncached =
        MultiTenantSupervisor::new(MultiTenantConfig { base: base_cfg(), cache: None }, specs());
    let outcomes_plain = uncached.run(&registry, &stream);
    assert_all_conserved(&uncached);
    assert_eq!(uncached.merged_counters().cache_hits, 0);

    for t in ["alpha", "beta"] {
        assert_eq!(
            plans_of(&outcomes_cached, t),
            plans_of(&outcomes_plain, t),
            "tenant {t}: cache on/off must serve identical plans"
        );
    }
}

/// Satellite regression: across a mid-run hot swap, no request observes a
/// mixed (old-plan, new-model) state — every entry cached under the old
/// epoch is rejected stale after the publish, and the post-swap plans equal
/// a cache-off run under the new model.
#[test]
fn hot_swap_never_serves_a_stale_cached_plan() {
    let db = shared_db();
    let registry = ModelRegistry::new(usize::MAX);
    registry.register("alpha", Arc::clone(db), shared_model());

    let items = tenants::generate_stream(
        &[("alpha", db)],
        &TenantStreamConfig {
            n_requests: 24,
            seed: 0x5a9 ^ chaos_seed(),
            mean_interarrival_ms: 30.0,
            repeat_p: 0.0,
            deadline_slack_ms: 1e9,
            pool_size: 24,
        },
    );
    let stream = to_requests(&items);

    let cache = Arc::new(PlanCache::new(4, 256));
    let mut sup = MultiTenantSupervisor::new(
        MultiTenantConfig { base: base_cfg(), cache: Some(Arc::clone(&cache)) },
        vec![TenantSpec::new("alpha", Arc::clone(db))],
    );

    // Warm: populate the cache under epoch 0, then replay to prove it hits.
    sup.run(&registry, &stream);
    sup.run(&registry, &stream);
    let hits_before = cache.stats().hits;
    assert!(hits_before > 0, "verbatim replay must hit the warm cache");

    // Hot-swap the tenant's model mid-run (the online loop's promotion).
    registry.publish("alpha", swapped_model()).expect("tenant is resident");

    // Replay once more: every lookup must reject or miss — zero new hits.
    let outcomes_after = sup.run(&registry, &stream);
    assert_eq!(
        cache.stats().hits,
        hits_before,
        "a plan cached under the old epoch was served after the swap"
    );
    assert_all_conserved(&sup);

    // And the post-swap plans are exactly what the new model plans cold.
    let mut cold = MultiTenantSupervisor::new(
        MultiTenantConfig { base: base_cfg(), cache: None },
        vec![TenantSpec::new("alpha", Arc::clone(db))],
    );
    let outcomes_cold = cold.run(&registry, &stream);
    assert_eq!(
        plans_of(&outcomes_after, "alpha"),
        plans_of(&outcomes_cold, "alpha"),
        "post-swap serving must reflect the new model only"
    );
}

/// A stats refresh (ANALYZE) is the other invalidation edge: same model,
/// same epoch, new statistics version — the warm cache must stop hitting.
#[test]
fn stats_refresh_invalidates_without_an_epoch_change() {
    let db = shared_db();
    let cache = Arc::new(PlanCache::new(4, 256));
    let registry = ModelRegistry::new(usize::MAX).attach_plan_cache(Arc::clone(&cache));
    registry.register("alpha", Arc::clone(db), shared_model());

    let items = tenants::generate_stream(
        &[("alpha", db)],
        &TenantStreamConfig {
            n_requests: 16,
            seed: 0xa7a ^ chaos_seed(),
            mean_interarrival_ms: 30.0,
            repeat_p: 0.0,
            deadline_slack_ms: 1e9,
            pool_size: 16,
        },
    );
    let stream = to_requests(&items);
    let mut sup = MultiTenantSupervisor::new(
        MultiTenantConfig { base: base_cfg(), cache: Some(Arc::clone(&cache)) },
        vec![TenantSpec::new("alpha", Arc::clone(db))],
    );

    sup.run(&registry, &stream);
    sup.run(&registry, &stream);
    let hits_before = cache.stats().hits;
    assert!(hits_before > 0);

    registry.refresh_stats("alpha");
    assert!(cache.is_empty(), "an attached registry purges the tenant's shards eagerly");

    sup.run(&registry, &stream);
    assert_eq!(
        cache.stats().hits,
        hits_before,
        "plans cached under the old statistics were served after the refresh"
    );
    assert_all_conserved(&sup);
}

/// Evict/reload cycle: after the registry drops a tenant under memory
/// pressure and reloads it on demand, the reloaded cell's epoch has moved
/// on, so neither the plan cache nor any pinned session state can serve
/// artifacts of the dropped instance.
#[test]
fn evicted_tenant_reloads_with_a_cold_cache_and_fresh_epoch() {
    let db = shared_db();
    let model = shared_model();
    let cache = Arc::new(PlanCache::new(4, 256));
    // Budget fits exactly one model: registering the second evicts the first.
    let budget = model.num_parameters() * std::mem::size_of::<f32>() + 1;
    let registry = ModelRegistry::new(budget).attach_plan_cache(Arc::clone(&cache));
    let h0 = registry.register("alpha", Arc::clone(db), Arc::clone(&model));
    let epoch0 = h0.cell.epoch();

    let items = tenants::generate_stream(
        &[("alpha", db)],
        &TenantStreamConfig {
            n_requests: 12,
            seed: 0xe71c ^ chaos_seed(),
            mean_interarrival_ms: 30.0,
            repeat_p: 0.0,
            deadline_slack_ms: 1e9,
            pool_size: 12,
        },
    );
    let stream = to_requests(&items);
    let mut sup = MultiTenantSupervisor::new(
        MultiTenantConfig { base: base_cfg(), cache: Some(Arc::clone(&cache)) },
        vec![TenantSpec::new("alpha", Arc::clone(db))],
    );
    sup.run(&registry, &stream);
    assert!(!cache.is_empty(), "warm run populates the cache");

    // Pressure: a second tenant arrives; alpha is the LRU victim.
    registry.register("beta", Arc::clone(db), Arc::clone(&model));
    assert_eq!(registry.resident_tenants(), vec!["beta".to_string()]);
    assert!(cache.is_empty(), "eviction purges the tenant's cache shards");

    // While evicted, alpha still serves — classically, on its own database.
    let outcomes = sup.run(&registry, &stream);
    assert!(outcomes
        .iter()
        .all(|o| matches!(&o.outcome.disposition, Disposition::Served(r) if r.served_by == ServedBy::Classical)));

    // Reload on miss: the epoch sequence resumes past the evicted cell's.
    let reloaded = registry
        .get_or_load("alpha", || {
            Ok::<_, std::convert::Infallible>((Arc::clone(db), Arc::clone(&model)))
        })
        .unwrap();
    assert!(
        reloaded.cell.epoch() > epoch0,
        "reload must advance the epoch so pinned sessions and cached plans reset"
    );
    let hits_before = cache.stats().hits;
    sup.run(&registry, &stream);
    assert_eq!(cache.stats().hits, hits_before, "nothing stale survived the evict/reload");
    assert_all_conserved(&sup);
}

/// The online loop's promotions flow through the same cell the supervisor
/// reads, so a cache attached to its supervisor honours mid-run swaps too.
#[test]
fn online_loop_promotion_invalidates_the_attached_cache() {
    let db = shared_db();
    let cache = Arc::new(PlanCache::new(4, 128));
    let tmp = std::env::temp_dir().join(format!("qps-tenants-online-{}", std::process::id()));
    let mut cfg = OnlineConfig::new(&tmp);
    cfg.supervisor = base_cfg();
    cfg.supervisor.cache =
        Some(PlanCacheCtx { cache: Arc::clone(&cache), tenant: "online".into(), stats_version: 0 });
    cfg.retrain_every = usize::MAX; // drive promotion by hand below
    let mut planner = OnlinePlanner::new(cfg, shared_model(), db).expect("planner builds");

    let items = tenants::generate_stream(
        &[("online", db)],
        &TenantStreamConfig {
            n_requests: 10,
            seed: 0x0a11 ^ chaos_seed(),
            mean_interarrival_ms: 40.0,
            repeat_p: 0.0,
            deadline_slack_ms: 1e9,
            pool_size: 10,
        },
    );
    let reqs: Vec<QueryRequest> = to_requests(&items).into_iter().map(|t| t.req).collect();

    planner.run_batch(db, &reqs).expect("first batch serves");
    planner.run_batch(db, &reqs).expect("replay batch serves");
    let hits_before = cache.stats().hits;
    assert!(hits_before > 0, "verbatim replay hits the warm cache");

    // A promotion publishes through the planner's cell — new epoch.
    planner.publish_unchecked(swapped_model());

    planner.run_batch(db, &reqs).expect("post-promotion batch serves");
    assert_eq!(
        cache.stats().hits,
        hits_before,
        "a plan cached before the promotion was served after it"
    );
    assert!(planner.serve_counters().conservation_holds());
    let _ = std::fs::remove_dir_all(&tmp);
}

/// A genuinely mixed stream — an IMDb-shaped tenant next to a Stack-shaped
/// one — flows through the lanes with per-tenant and merged conservation,
/// even with no model resident at all (classical degradation everywhere).
#[test]
fn mixed_imdb_and_stack_stream_conserves_per_tenant() {
    let imdb = shared_db();
    let stack = stack_db();
    let registry = ModelRegistry::new(usize::MAX);
    let items = tenants::generate_stream(
        &[("movies", imdb), ("forum", stack)],
        &TenantStreamConfig {
            n_requests: 60,
            seed: 0x31f ^ chaos_seed(),
            mean_interarrival_ms: 10.0,
            repeat_p: 0.25,
            deadline_slack_ms: 1e9,
            pool_size: 16,
        },
    );
    let stream = to_requests(&items);
    let mut sup = MultiTenantSupervisor::new(
        MultiTenantConfig { base: base_cfg(), cache: None },
        vec![
            TenantSpec::new("movies", Arc::clone(imdb)),
            TenantSpec::new("forum", Arc::clone(stack)).with_weight(2.0),
        ],
    );
    let outcomes = sup.run(&registry, &stream);
    assert_eq!(outcomes.len(), stream.len());
    for (o, r) in outcomes.iter().zip(&stream) {
        assert_eq!(o.tenant, r.tenant, "outcomes stay in input order");
        assert_eq!(o.outcome.query_id, r.req.query.id);
    }
    assert_all_conserved(&sup);
    let per = sup.counters();
    assert!(per["movies"].admitted > 0 && per["forum"].admitted > 0);
    let merged = sup.merged_counters();
    assert_eq!(merged.total_seen(), stream.len());
    assert_eq!(merged.served_neural, 0, "no model registered: everything degrades");
}

// ---------------------------------------------------------------------------
// Fingerprint normalization properties (satellite: proptest over generated
// workloads).

use proptest::prelude::*;

/// Deterministic xorshift for in-test shuffles (keeps proptest shrinking
/// meaningful: the whole transformation is a function of one u64).
struct XorShift(u64);
impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0.max(1);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

fn shuffle<T>(v: &mut [T], rng: &mut XorShift) {
    for i in (1..v.len()).rev() {
        v.swap(i, rng.below(i + 1));
    }
}

/// Reorder relations/joins/filters, flip join orientations and
/// consistently rename every alias — all fingerprint-neutral.
fn scramble(
    q: &qpseeker_repro::engine::query::Query,
    seed: u64,
) -> qpseeker_repro::engine::query::Query {
    let mut rng = XorShift(seed | 1);
    let mut out = q.clone();
    shuffle(&mut out.relations, &mut rng);
    shuffle(&mut out.joins, &mut rng);
    shuffle(&mut out.filters, &mut rng);
    for j in &mut out.joins {
        if rng.next().is_multiple_of(2) {
            std::mem::swap(&mut j.left, &mut j.right);
        }
    }
    // Consistent alias renaming keyed off the *original* relation order so
    // the map is stable regardless of the shuffle above.
    let map: Vec<(String, String)> = q
        .relations
        .iter()
        .enumerate()
        .map(|(i, r)| (r.alias.clone(), format!("x{i}_{}", seed % 7)))
        .collect();
    let sub = |a: &str| -> String {
        map.iter().find(|(from, _)| from == a).map(|(_, to)| to.clone()).unwrap_or_else(|| a.into())
    };
    for r in &mut out.relations {
        r.alias = sub(&r.alias);
    }
    for j in &mut out.joins {
        j.left.alias = sub(&j.left.alias);
        j.right.alias = sub(&j.right.alias);
    }
    for f in &mut out.filters {
        f.col.alias = sub(&f.col.alias);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The fingerprint is invariant under every normalization the cache
    /// promises: join-predicate order and orientation, relation and filter
    /// order, and consistent alias renaming.
    #[test]
    fn prop_fingerprint_invariant_under_normalization(qseed in 0u64..400, scramble_seed in 1u64..1_000_000_000) {
        let pool = synthetic::generate_queries(
            shared_db(),
            &SyntheticConfig { n_queries: 1, seed: 0xf1d0 ^ qseed },
        );
        let (q, _) = &pool[0];
        let fp = query_fingerprint(q);
        let scrambled = scramble(q, scramble_seed);
        prop_assert_eq!(
            query_fingerprint(&scrambled), fp,
            "scramble({}) changed the fingerprint of {:?}", scramble_seed, q.id
        );
    }
}

/// Distinct query graphs across both generated workloads do not collide:
/// whenever two generated queries share a fingerprint, their alias-free
/// structure (table multiset, join shape, filter signature) is identical —
/// i.e. the collision is between genuinely isomorphic graphs, never between
/// different ones.
#[test]
fn generated_workloads_do_not_collide_fingerprints() {
    use std::collections::HashMap;
    let mut queries: Vec<qpseeker_repro::engine::query::Query> = Vec::new();
    queries.extend(
        synthetic::generate_queries(shared_db(), &SyntheticConfig { n_queries: 64, seed: 0xabc })
            .into_iter()
            .map(|(q, _)| q),
    );
    queries.extend(
        qpseeker_repro::workloads::stack::generate_queries(
            stack_db(),
            &qpseeker_repro::workloads::StackConfig { n_queries: 64, seed: 0xdef },
        )
        .into_iter()
        .map(|(q, _)| q),
    );

    // Alias-free structural signature: collisions are only legal between
    // queries this signature cannot tell apart either.
    let signature = |q: &qpseeker_repro::engine::query::Query| {
        let table_of = |alias: &str| {
            q.relations
                .iter()
                .find(|r| r.alias == alias)
                .map(|r| r.table.clone())
                .unwrap_or_else(|| alias.to_string())
        };
        let mut tables: Vec<String> = q.relations.iter().map(|r| r.table.clone()).collect();
        tables.sort();
        let mut joins: Vec<String> = q
            .joins
            .iter()
            .map(|j| {
                let mut ends = [
                    format!("{}.{}", table_of(&j.left.alias), j.left.column),
                    format!("{}.{}", table_of(&j.right.alias), j.right.column),
                ];
                ends.sort();
                ends.join("=")
            })
            .collect();
        joins.sort();
        let mut filters: Vec<String> = q
            .filters
            .iter()
            .map(|f| format!("{}.{} {:?} {}", table_of(&f.col.alias), f.col.column, f.op, f.value))
            .collect();
        filters.sort();
        format!("{tables:?}|{joins:?}|{filters:?}")
    };

    let mut by_fp: HashMap<u64, Vec<usize>> = HashMap::new();
    for (i, q) in queries.iter().enumerate() {
        by_fp.entry(query_fingerprint(q)).or_default().push(i);
    }
    let mut distinct_fps = 0usize;
    for (fp, members) in &by_fp {
        distinct_fps += 1;
        let sig0 = signature(&queries[members[0]]);
        for &m in &members[1..] {
            assert_eq!(
                signature(&queries[m]),
                sig0,
                "fingerprint {fp:#x} collides across structurally different queries \
                 ({} vs {})",
                queries[members[0]].id,
                queries[m].id,
            );
        }
    }
    assert!(
        distinct_fps >= queries.len() / 2,
        "generators should produce mostly-distinct graphs: {distinct_fps} fps for {} queries",
        queries.len()
    );
}
