//! Strategy-layer suite: pluggable search (left-deep MCTS / bushy beam)
//! and risk-aware scoring under the serving loop.
//!
//! Four guarantees are exercised here, end to end:
//! 1. seeded latent sampling is deterministic: the same seed produces
//!    bitwise-identical (mean, σ) risk statistics across independent
//!    sessions ("workers") and across scalar vs batched evaluation;
//! 2. λ = 0 short-circuits to the exact mean-only code path — the plan and
//!    its prediction are bitwise equal to the plain MCTS planner's;
//! 3. worker count stays invisible under every strategy × λ × batch
//!    combination (PR4's invariant extended to the strategy layer);
//! 4. the serving loop conserves accounting under chaos for every strategy
//!    combination, and the plan cache never serves one strategy's plan to
//!    another (the strategy stamp keys entries).
//!
//! CI matrix hooks: `QPS_CHAOS_SEED` varies fault schedules;
//! `QPS_STRATEGY` (`mcts`|`beam`) and `QPS_RISK_LAMBDA` pin the matrix to
//! one combination per job.

use qpseeker_repro::core::prelude::*;
use qpseeker_repro::engine::prelude::*;
use qpseeker_repro::storage::{Database, FaultConfig};
use qpseeker_repro::workloads::{synthetic, Qep, SyntheticConfig};
use std::sync::{Arc, OnceLock};

fn shared_db() -> &'static Arc<Database> {
    static DB: OnceLock<Arc<Database>> = OnceLock::new();
    DB.get_or_init(|| Arc::new(qpseeker_repro::storage::datagen::imdb::generate(0.04, 2)))
}

/// One fitted model shared by every test (training is the slow part).
fn shared_model() -> &'static QPSeeker {
    static MODEL: OnceLock<QPSeeker> = OnceLock::new();
    MODEL.get_or_init(|| {
        let db = shared_db();
        let w = synthetic::generate(db, &SyntheticConfig { n_queries: 12, seed: 3 });
        let refs: Vec<&Qep> = w.qeps.iter().collect();
        let mut model = QPSeeker::new(db, ModelConfig::small());
        model.fit(&refs).expect("training succeeds");
        model
    })
}

fn chaos_seed() -> u64 {
    std::env::var("QPS_CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0)
}

fn queries(n: usize, seed: u64) -> Vec<Query> {
    synthetic::generate_queries(shared_db(), &SyntheticConfig { n_queries: n, seed })
        .into_iter()
        .map(|(q, _sql)| q)
        .collect()
}

/// The strategy × λ combinations under test. `QPS_STRATEGY` and
/// `QPS_RISK_LAMBDA` (set by the CI matrix) pin the sweep to one entry;
/// unset, the full 2×2 matrix runs.
fn strategy_matrix() -> Vec<StrategyConfig> {
    let kinds: Vec<StrategyKind> = match std::env::var("QPS_STRATEGY") {
        Ok(s) => vec![StrategyKind::parse(&s).expect("QPS_STRATEGY must be mcts|beam")],
        Err(_) => vec![StrategyKind::Mcts, StrategyKind::Beam],
    };
    let lambdas: Vec<f64> = match std::env::var("QPS_RISK_LAMBDA") {
        Ok(l) => vec![l.parse().expect("QPS_RISK_LAMBDA must be a float")],
        Err(_) => vec![0.0, 0.5],
    };
    let mut out = Vec::new();
    for &kind in &kinds {
        for &risk_lambda in &lambdas {
            out.push(StrategyConfig { kind, risk_lambda, ..StrategyConfig::default() });
        }
    }
    out
}

/// Left-deep chain plan over `query.relations` in declaration order, one
/// scan op for every leaf — candidates of the same tree shape, so the
/// batched evaluation path engages.
fn chain_plan(q: &Query, scan: ScanOp) -> PlanNode {
    let mut node = PlanNode::scan(q, &q.relations[0].alias, scan);
    for r in &q.relations[1..] {
        node = PlanNode::Join {
            op: JoinOp::HashJoin,
            left: Box::new(node),
            right: Box::new(PlanNode::scan(q, &r.alias, scan)),
            preds: q.joins.iter().filter(|j| j.touches(&r.alias)).cloned().collect(),
        };
    }
    node
}

/// Guarantee 1: same seed ⇒ bitwise-identical (mean, σ), across fresh
/// sessions standing in for workers, and across scalar vs batched scoring.
#[test]
fn seeded_risk_stats_are_bitwise_identical_across_sessions_and_batches() {
    let model = shared_model();
    let qs = queries(6, 0x5a11 ^ chaos_seed());
    let q = qs.iter().find(|q| q.relations.len() >= 3).expect("a multi-join query");

    // The draw itself is a pure function of (samples, seed).
    let e1 = model.risk_eps(8, 0xfeed);
    let e2 = model.risk_eps(8, 0xfeed);
    assert_eq!(e1.data(), e2.data(), "risk_eps must be deterministic");
    let e3 = model.risk_eps(8, 0xfeed ^ 1);
    assert_ne!(e1.data(), e3.data(), "a different seed must draw differently");

    let plans: Vec<PlanNode> = ScanOp::ALL.iter().map(|&s| chain_plan(q, s)).collect();
    let plan_refs: Vec<&PlanNode> = plans.iter().collect();

    // "Workers" 1, 2, 4: independent sessions and contexts over the shared
    // model, scalar path.
    let mut reference: Option<Vec<(u64, u64)>> = None;
    for _worker_pool in [1usize, 2, 4] {
        let mut sess = model.new_session();
        let mut ctx = model.query_context(q);
        let stats: Vec<(u64, u64)> = plans
            .iter()
            .map(|p| {
                let (m, s) =
                    model.predict_risk_with_context_in(&mut sess.feat, q, p, &mut ctx, &e1);
                assert!(m.is_finite() && s.is_finite() && s >= 0.0);
                (m.to_bits(), s.to_bits())
            })
            .collect();
        match &reference {
            None => reference = Some(stats),
            Some(r) => assert_eq!(r, &stats, "risk stats diverged across sessions"),
        }
    }

    // Batch on: one sampled pass over all candidates, bitwise equal per row.
    let mut sess = model.new_session();
    let mut ctx = model.query_context(q);
    let mut batched = Vec::new();
    model.predict_risk_batch_with_context_in(
        &mut sess.feat,
        q,
        &plan_refs,
        &mut ctx,
        &e1,
        &mut batched,
    );
    let batched_bits: Vec<(u64, u64)> =
        batched.iter().map(|(m, s)| (m.to_bits(), s.to_bits())).collect();
    assert_eq!(reference.unwrap(), batched_bits, "batched risk stats diverged from scalar");
}

/// Guarantee 2: λ = 0 is not "approximately" the old planner — it takes the
/// identical code path, so the chosen plan and its predicted runtime are
/// bitwise equal to the plain `MctsPlanner`'s on every query.
#[test]
fn lambda_zero_plans_bitwise_equal_the_mean_only_path() {
    let model = shared_model();
    let mcts_cfg = MctsConfig { budget_ms: 1e9, max_simulations: 40, ..MctsConfig::default() };
    let strat = StrategyConfig { risk_lambda: 0.0, ..StrategyConfig::default() };
    for q in &queries(8, 0x10ad ^ chaos_seed()) {
        let mut s1 = model.new_session();
        let r1 = MctsPlanner::new(mcts_cfg.clone()).plan_with_session(model, q, &mut s1);
        let mut s2 = model.new_session();
        let r2 = StrategyPlanner::from_config(&strat, mcts_cfg.clone())
            .plan_with_session(model, q, &mut s2);
        assert_eq!(r1.plan, r2.plan, "query {}: λ=0 changed the plan", q.id);
        assert_eq!(
            r1.predicted_ms.to_bits(),
            r2.predicted_ms.to_bits(),
            "query {}: λ=0 changed the prediction",
            q.id
        );
        assert_eq!(r1.plans_evaluated, r2.plans_evaluated, "query {}", q.id);
    }
}

/// A supervisor config in which nothing is timing- or worker-count-
/// dependent (simulation-capped search, breaker that cannot trip, no
/// shedding), parameterized by strategy and batch mode.
fn deterministic_cfg(
    workers: usize,
    strat: &StrategyConfig,
    batch_eval: usize,
) -> SupervisorConfig {
    SupervisorConfig {
        serve: ServeConfig {
            mcts: MctsConfig {
                budget_ms: 1e9,
                max_simulations: 16,
                batch_eval,
                ..MctsConfig::default()
            },
            strategy: strat.clone(),
            deadline_ms: 1e12,
            max_retries: 1,
            backoff_base_ms: 0.0,
            faults: None,
        },
        window: 16,
        min_samples: 8,
        failure_threshold: 2.0,
        cooldown_queries: 8,
        probe_successes: 3,
        queue_capacity: 4096,
        service_ms: 5.0,
        workers,
        cache: None,
        broker: None,
    }
}

fn gentle_requests(n: usize, qseed: u64) -> Vec<QueryRequest> {
    queries(n, qseed)
        .into_iter()
        .enumerate()
        .map(|(i, query)| {
            let arrival_ms = i as f64;
            QueryRequest { query, arrival_ms, deadline_ms: 1e12 }
        })
        .collect()
}

/// Guarantee 3: under every strategy × λ × batch combination, 1 and 4
/// workers choose bitwise-identical plans with bitwise-identical
/// predictions — seeded risk sampling must be a function of the query, not
/// of which worker scores it.
#[test]
fn every_strategy_is_identical_across_worker_counts() {
    let db = shared_db();
    let model = shared_model();
    for strat in strategy_matrix() {
        for batch_eval in [1usize, 16] {
            let stream = gentle_requests(8, 0x3a7e ^ chaos_seed());
            let run = |workers: usize| {
                let mut sup = Supervisor::new(deterministic_cfg(workers, &strat, batch_eval));
                let outcomes = sup.run(db, Some(model), &stream);
                (outcomes, sup.counters())
            };
            let (ref_outcomes, ref_counters) = run(1);
            assert!(ref_counters.conservation_holds(), "{ref_counters}");
            let (outcomes, counters) = run(4);
            assert_eq!(
                counters,
                ref_counters,
                "{}/λ={}/batch={batch_eval}: counters diverged",
                strat.kind.as_str(),
                strat.risk_lambda
            );
            for (a, b) in ref_outcomes.iter().zip(&outcomes) {
                let (ra, rb) = match (&a.disposition, &b.disposition) {
                    (Disposition::Served(ra), Disposition::Served(rb)) => (ra, rb),
                    other => panic!("non-served disposition in deterministic stream: {other:?}"),
                };
                assert_eq!(
                    ra.plan,
                    rb.plan,
                    "query {}: {}/λ={}/batch={batch_eval} plan diverged at 4 workers",
                    a.query_id,
                    strat.kind.as_str(),
                    strat.risk_lambda
                );
                assert_eq!(
                    ra.predicted_ms.map(f64::to_bits),
                    rb.predicted_ms.map(f64::to_bits),
                    "query {}: {}/λ={}/batch={batch_eval} prediction diverged at 4 workers",
                    a.query_id,
                    strat.kind.as_str(),
                    strat.risk_lambda
                );
            }
        }
    }
}

/// Guarantee 4a: accounting is conserved under chaos for every strategy
/// combination — admitted = served_neural + served_classical + failed, and
/// every served plan validates.
#[test]
fn chaos_stream_conserves_accounting_under_every_strategy() {
    let db = shared_db();
    let model = shared_model();
    for strat in strategy_matrix() {
        let mut cfg = deterministic_cfg(2, &strat, 16);
        cfg.serve.mcts =
            MctsConfig { budget_ms: 10.0, max_simulations: 8, ..MctsConfig::default() };
        cfg.serve.deadline_ms = 10_000.0;
        cfg.serve.faults = Some(FaultConfig::chaos(0xc4a0 ^ chaos_seed(), 0.1));
        let stream = gentle_requests(40, 0x5eed ^ chaos_seed());
        let mut sup = Supervisor::new(cfg);
        let outcomes = sup.run(db, Some(model), &stream);
        let c = sup.counters();
        assert!(c.conservation_holds(), "{}/λ={}: {c}", strat.kind.as_str(), strat.risk_lambda);
        assert_eq!(outcomes.len(), stream.len());
        for (req, o) in stream.iter().zip(&outcomes) {
            if let Disposition::Served(r) = &o.disposition {
                let q = &req.query;
                r.plan.validate(q).unwrap_or_else(|e| {
                    panic!(
                        "query {}: {}/λ={} served invalid plan: {e}",
                        o.query_id,
                        strat.kind.as_str(),
                        strat.risk_lambda
                    )
                });
            }
        }
    }
}

/// Guarantee 4b, end to end through the serving loop: a shared plan cache
/// across a strategy switch never serves a foreign plan. The first pass
/// under each strategy must get zero cache hits (the other strategy's
/// entries carry a different stamp), and a repeat pass under the same
/// strategy hits and reproduces the identical plans.
#[test]
fn plan_cache_is_isolated_per_strategy_end_to_end() {
    let db = shared_db();
    let model = shared_model();
    let cache = Arc::new(PlanCache::new(4, 64));
    let stream = gentle_requests(6, 0xcace ^ chaos_seed());

    let strategies = [
        StrategyConfig::default(),
        StrategyConfig { kind: StrategyKind::Beam, ..StrategyConfig::default() },
        StrategyConfig { risk_lambda: 0.5, ..StrategyConfig::default() },
    ];
    let run = |strat: &StrategyConfig| {
        let mut cfg = deterministic_cfg(1, strat, 16);
        cfg.cache =
            Some(PlanCacheCtx { cache: Arc::clone(&cache), tenant: "t0".into(), stats_version: 0 });
        let mut sup = Supervisor::new(cfg);
        let outcomes = sup.run(db, Some(model), &stream);
        (outcomes, sup.counters())
    };

    // Each strategy plans the stream, then repeats it. The repeat must be
    // all hits reproducing the identical plans; the *next* strategy's first
    // pass must get zero hits — the resident entries carry the previous
    // strategy's stamp, so its lookups stale-reject (and eagerly evict)
    // them rather than serve a foreign plan.
    for strat in &strategies {
        let (first, counters) = run(strat);
        assert_eq!(
            counters.cache_hits,
            0,
            "{}/λ={}: first pass must not hit another strategy's entries",
            strat.kind.as_str(),
            strat.risk_lambda
        );
        let (outcomes, counters) = run(strat);
        assert_eq!(
            counters.cache_hits,
            stream.len(),
            "{}/λ={}: repeat pass must be all cache hits",
            strat.kind.as_str(),
            strat.risk_lambda
        );
        for (a, b) in first.iter().zip(&outcomes) {
            let (ra, rb) = match (&a.disposition, &b.disposition) {
                (Disposition::Served(ra), Disposition::Served(rb)) => (ra, rb),
                other => panic!("non-served disposition: {other:?}"),
            };
            assert!(rb.cache_hit, "query {}: expected a cache hit", a.query_id);
            assert_eq!(ra.plan, rb.plan, "query {}: cache returned a foreign plan", a.query_id);
        }
    }
}
