//! End-to-end suite for the online adaptation loop (experience WAL, gated
//! fine-tuning, hot-swap, rollback, drift recovery).
//!
//! Guarantees exercised:
//! 1. a kill at *any* durable write — WAL append, fine-tune journal
//!    snapshot, promoted checkpoint, trainer cursor — recovers to a
//!    consistent state: the WAL holds exactly the acknowledged prefix
//!    (no loss, no duplicates), the serving model is finite and valid, and
//!    the loop keeps serving;
//! 2. a hot-swap landing mid-run never drops an in-flight request:
//!    accounting is conserved exactly across every swap point
//!    (admitted = served_neural + served_classical + failed);
//! 3. a regressed publish is rolled back automatically by the monitor, and
//!    traffic returns to the pre-swap model;
//! 4. under mid-stream data drift, the online loop retrains and recovers
//!    its plan quality while a frozen model degrades.
//!
//! Set `QPS_CHAOS_SEED` to vary every fault schedule (CI sweeps seeds).

use qpseeker_repro::core::prelude::*;
use qpseeker_repro::engine::executor::Executor;
use qpseeker_repro::storage::{Database, FaultConfig};
use qpseeker_repro::workloads::{drift, synthetic, Qep, SyntheticConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

fn chaos_seed() -> u64 {
    std::env::var("QPS_CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0)
}

fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("qps-online-it-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The pre-drift database (stock IMDb shape) shared by every test.
fn pre_db() -> &'static Arc<Database> {
    static DB: OnceLock<Arc<Database>> = OnceLock::new();
    DB.get_or_init(|| Arc::new(drift::pre_db(0.05, 11)))
}

/// The post-drift database: same seed, canonical drift profile applied.
fn post_db() -> &'static Arc<Database> {
    static DB: OnceLock<Arc<Database>> = OnceLock::new();
    DB.get_or_init(|| Arc::new(drift::post_db(0.05, 11)))
}

/// One model fitted on the pre-drift workload, shared via checkpoint so each
/// test gets its own `Arc` (tests mutate cells, never the weights).
fn base_checkpoint() -> &'static Checkpoint {
    static CKPT: OnceLock<Checkpoint> = OnceLock::new();
    CKPT.get_or_init(|| {
        let db = pre_db();
        let w = synthetic::generate(db, &SyntheticConfig { n_queries: 16, seed: 3 });
        let refs: Vec<&Qep> = w.qeps.iter().collect();
        let mut model = QPSeeker::new(db, ModelConfig::small());
        model.fit(&refs).expect("training succeeds");
        Checkpoint::capture(&model, db)
    })
}

fn base_model() -> Arc<QPSeeker> {
    Arc::new(base_checkpoint().clone().restore(pre_db()).expect("restore succeeds"))
}

/// Nothing timing-dependent: simulation-capped MCTS, breaker that cannot
/// trip, generous queue and deadlines.
fn supervisor_cfg(workers: usize) -> SupervisorConfig {
    SupervisorConfig {
        serve: ServeConfig {
            mcts: MctsConfig { budget_ms: 1e9, max_simulations: 16, ..MctsConfig::default() },
            strategy: Default::default(),
            deadline_ms: 1e12,
            max_retries: 1,
            backoff_base_ms: 0.0,
            faults: None,
        },
        window: 16,
        min_samples: 8,
        failure_threshold: 2.0,
        cooldown_queries: 8,
        probe_successes: 3,
        queue_capacity: 4096,
        service_ms: 5.0,
        workers,
        cache: None,
        broker: None,
    }
}

fn online_cfg(dir: &PathBuf) -> OnlineConfig {
    let mut cfg = OnlineConfig::new(dir);
    cfg.supervisor = supervisor_cfg(1);
    cfg.retrain_every = 8;
    cfg.holdout = 2;
    cfg.fine_tune_epochs = 2;
    cfg.segment_records = 16;
    cfg
}

fn requests(db: &Arc<Database>, n: usize, seed: u64) -> Vec<QueryRequest> {
    synthetic::generate_queries(db, &SyntheticConfig { n_queries: n, seed })
        .into_iter()
        .enumerate()
        .map(|(i, (query, _tmpl))| QueryRequest { query, arrival_ms: i as f64, deadline_ms: 1e12 })
        .collect()
}

fn assert_conserved(c: &ServeCounters) {
    assert!(c.conservation_holds(), "request accounting must be conserved: {c}");
}

fn params_finite(model: &QPSeeker) -> bool {
    model.store.iter().all(|(_, p)| p.value.data().iter().all(|v| v.is_finite()))
}

/// Guarantee 1a, WAL path in isolation: kill the loop at every WAL append;
/// a restart over the same state dir recovers exactly the acknowledged
/// records — never one fewer, never a duplicate, never a gap.
#[test]
fn kill_at_every_wal_append_recovers_exact_acknowledged_prefix() {
    let db = pre_db();
    for k in 0..8u64 {
        let dir = scratch(&format!("wal-kill-{k}"));
        let mut cfg = online_cfg(&dir);
        cfg.retrain_every = 10_000; // isolate: the only durable writes are WAL appends
        cfg.faults = Some(FaultConfig {
            seed: chaos_seed(),
            crash_after_writes: Some(k),
            ..FaultConfig::default()
        });
        let mut op = OnlinePlanner::new(cfg, base_model(), db).expect("open loop");
        let reqs = requests(db, 10, 0x5eed ^ chaos_seed());
        let err = op.run_batch(db, &reqs).expect_err("crash point must fire");
        assert!(matches!(err, CoreError::InjectedCrash { .. }), "got {err}");
        // Every request was answered before observation began.
        assert_conserved(&op.serve_counters());
        assert_eq!(op.serve_counters().admitted, reqs.len());
        let acked = op.counters().records_logged;
        assert_eq!(acked as u64, k, "exactly k appends were acknowledged");
        drop(op);

        // "Restart": a clean loop over the same directory.
        let mut clean = online_cfg(&dir);
        clean.retrain_every = 10_000;
        let op2 = OnlinePlanner::new(clean, base_model(), db).expect("recovery succeeds");
        assert_eq!(op2.wal().len(), acked, "recovered records == acknowledged records");
        for (i, r) in op2.wal().records().iter().enumerate() {
            assert_eq!(r.seq, i as u64, "sequence numbers must stay contiguous");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Guarantee 1b, the whole round: kill at *any* durable write of a full
/// serve→observe→fine-tune→promote round (WAL appends, journal snapshots,
/// promoted checkpoint, trainer cursor). Whatever the crash point, a restart
/// recovers a contiguous WAL, a finite serving model, and a loop that keeps
/// serving with exact accounting.
#[test]
fn kill_anywhere_in_a_retrain_round_recovers_to_a_consistent_loop() {
    let db = pre_db();
    let mut crashed = 0usize;
    let mut completed = 0usize;
    for k in 0..18u64 {
        let dir = scratch(&format!("round-kill-{k}"));
        let mut cfg = online_cfg(&dir);
        cfg.faults = Some(FaultConfig {
            seed: chaos_seed(),
            crash_after_writes: Some(k),
            ..FaultConfig::default()
        });
        let mut op = OnlinePlanner::new(cfg, base_model(), db).expect("open loop");
        let reqs = requests(db, 10, 0xab1e ^ chaos_seed());
        match op.run_batch(db, &reqs) {
            Ok(report) => {
                // k was past the round's last durable write.
                completed += 1;
                assert!(report.promotion.is_some(), "a full round must reach the gate");
            }
            Err(e) => {
                crashed += 1;
                assert!(matches!(e, CoreError::InjectedCrash { .. }), "got {e}");
            }
        }
        drop(op);

        let clean = online_cfg(&dir);
        let mut op2 = OnlinePlanner::new(clean, base_model(), db).expect("recovery succeeds");
        for (i, r) in op2.wal().records().iter().enumerate() {
            assert_eq!(r.seq, i as u64, "k={k}: WAL must recover contiguous");
        }
        let (serving, _) = op2.cell().load();
        assert!(params_finite(&serving), "k={k}: recovered serving model must be finite");
        // The loop keeps working after recovery.
        let report = op2.run_batch(db, &requests(db, 8, 0xbee ^ chaos_seed())).expect("serve on");
        assert_eq!(report.outcomes.len(), 8);
        assert_conserved(&op2.serve_counters());
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert!(crashed > 0, "sweep never hit a crash point — widen the range");
    assert!(completed > 0, "sweep never completed a round — widen the range");
}

/// Guarantee 2: hot-swaps landing continuously under a 4-worker pool never
/// drop an in-flight request; accounting is conserved across every swap
/// point and every outcome is served.
#[test]
fn hot_swap_storm_mid_run_preserves_every_request() {
    let db = pre_db();
    let a = base_model();
    let b = base_model(); // distinct Arc, same weights
    let cell = ModelCell::new(Arc::clone(&a));
    let stream = requests(db, 24, 0xd00d ^ chaos_seed());
    let mut sup = Supervisor::new(supervisor_cfg(4));

    let done = AtomicBool::new(false);
    let outcomes = std::thread::scope(|s| {
        let cell_ref = &cell;
        let done_ref = &done;
        let (a, b) = (&a, &b);
        s.spawn(move || {
            let mut i = 0u32;
            while !done_ref.load(Ordering::Relaxed) && i < 500 {
                let m = if i.is_multiple_of(2) { Arc::clone(b) } else { Arc::clone(a) };
                cell_ref.publish(m);
                i += 1;
                std::thread::yield_now();
            }
        });
        let out = sup.run_with_cell(db, &cell, &stream);
        done.store(true, Ordering::Relaxed);
        out
    });

    let c = sup.counters();
    assert_eq!(c.admitted, stream.len(), "generous bounds must admit everything");
    assert_conserved(&c);
    assert_eq!(c.failed, 0, "a swap must never fail a request");
    for o in &outcomes {
        assert!(
            matches!(o.disposition, Disposition::Served(_)),
            "query {} was dropped across a swap",
            o.query_id
        );
    }
    assert!(cell.epoch() > 0, "at least one swap landed");
}

/// An in-flight holder of the old model keeps a fully usable planner after
/// swap and rollback — publication never invalidates live references.
#[test]
fn in_flight_model_reference_survives_swap_and_rollback() {
    let db = pre_db();
    let a = base_model();
    let cell = ModelCell::new(Arc::clone(&a));
    let (held, epoch0) = cell.load();
    cell.publish(base_model());
    cell.rollback();
    assert!(Arc::ptr_eq(&held, &a));
    assert!(cell.epoch() > epoch0, "both transitions bumped the epoch");
    // The held reference still plans end to end.
    let q = &requests(db, 1, 5)[0].query;
    let planner = MctsPlanner::new(MctsConfig { max_simulations: 8, ..MctsConfig::default() });
    let result = planner.plan(&held, q);
    assert!(Executor::new(db).execute(&result.plan).time_ms > 0.0);
}

/// Guarantee 3: an out-of-band publish of a garbage model regresses observed
/// runtimes; the monitor catches it and traffic rolls back to the good model
/// automatically.
#[test]
fn regressed_publish_is_rolled_back_automatically() {
    let db = pre_db();
    let dir = scratch("rollback");
    let mut cfg = online_cfg(&dir);
    cfg.retrain_every = 10_000; // isolate the rollback path from retraining
    cfg.rollback_window = 16;
    cfg.rollback_min_samples = 6;
    cfg.rollback_threshold = 1.25;
    let mut op = OnlinePlanner::new(cfg, base_model(), db).expect("open loop");

    // A recurring workload: the same batch before and after the swap, so
    // the only variable the monitor sees is the model change.
    let recurring = requests(db, 10, 42);

    // Establish a baseline on the good model.
    op.run_batch(db, &recurring).expect("baseline batch");
    assert_eq!(op.counters().rollbacks, 0);
    let (good, _) = op.cell().load();

    // Deploy a sabotaged model out of band: negated weights make its cost
    // estimates garbage, so MCTS picks plans blind.
    let mut bad = base_checkpoint().clone().restore(db).expect("restore");
    let ids: Vec<_> = bad.store.iter().map(|(id, _)| id).collect();
    for id in ids {
        for v in bad.store.value_mut(id).data_mut() {
            *v = -*v;
        }
    }
    op.publish_unchecked(Arc::new(bad));

    // Post-swap traffic; the monitor needs min_samples observations.
    let mut rolled = false;
    for _ in 0..3 {
        let report = op.run_batch(db, &recurring).expect("post-swap batch");
        if report.rolled_back {
            rolled = true;
            break;
        }
    }
    assert!(rolled, "monitor must detect the regression and roll back");
    assert_eq!(op.counters().rollbacks, 1);
    let (now, _) = op.cell().load();
    assert!(Arc::ptr_eq(&now, &good), "traffic must return to the pre-swap model");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Mean observed runtime of the plans a supervisor chooses for `reqs` on
/// `db`, with `model` (None = classical optimizer). The executor's virtual
/// clock makes this deterministic.
fn mean_plan_ms(db: &Arc<Database>, model: Option<&QPSeeker>, reqs: &[QueryRequest]) -> f64 {
    let mut sup = Supervisor::new(supervisor_cfg(1));
    let outcomes = sup.run(db, model, reqs);
    mean_served_ms(db, &outcomes)
}

fn mean_served_ms(db: &Arc<Database>, outcomes: &[SupervisedOutcome]) -> f64 {
    let times: Vec<f64> = outcomes
        .iter()
        .filter_map(|o| match &o.disposition {
            Disposition::Served(r) => Some(Executor::new(db).execute(&r.plan).time_ms),
            _ => None,
        })
        .collect();
    assert!(!times.is_empty(), "no served outcomes to measure");
    times.iter().sum::<f64>() / times.len() as f64
}

/// Guarantee 4, the drift scenario: the data shifts mid-stream (fact tables
/// rebalance, fan-out skews flip). The classical optimizer re-plans from
/// fresh statistics, so normalizing by its plan runtimes isolates *model*
/// quality from the raw cost shift. The frozen model's normalized cost
/// degrades post-drift; the online loop retrains on its own observations
/// and recovers to within 10% of its pre-drift ratio.
#[test]
fn online_model_recovers_from_drift_while_frozen_degrades() {
    let pre = pre_db();
    let post = post_db();
    // One fixed query stream, drawn against the pre-drift database so the
    // queries themselves are constant across the drift point; a separate
    // fixed evaluation set measures plan quality outside the serving loop.
    let eval = requests(pre, 20, 7);
    let stream = requests(pre, 50, 7);
    let chunks: Vec<&[QueryRequest]> = stream.chunks(10).collect();

    let dir = scratch("drift");
    let mut cfg = online_cfg(&dir);
    cfg.retrain_every = 8;
    cfg.holdout = 2;
    cfg.fine_tune_epochs = 3;
    cfg.gate_tolerance = 0.10;
    let base = base_model();
    let mut op = OnlinePlanner::new(cfg, Arc::clone(&base), pre).expect("open loop");

    // Pre-drift baseline: how much worse than the classical optimizer the
    // model's plans run, on the same data (ratio 1.0 = parity).
    let r0 = mean_plan_ms(pre, Some(&base), &eval) / mean_plan_ms(pre, None, &eval);
    // The frozen model meets the drift with no adaptation.
    let frozen_post = mean_plan_ms(post, Some(&base), &eval) / mean_plan_ms(post, None, &eval);

    // The online loop serves the same stream: one pre-drift batch, then the
    // data shifts underneath it and it retrains on what it observes.
    op.run_batch(pre, chunks[0]).expect("pre-drift batch");
    for chunk in &chunks[1..] {
        op.run_batch(post, chunk).expect("post-drift batch");
    }
    let (adapted, _) = op.cell().load();
    let online_final = mean_plan_ms(post, Some(&adapted), &eval) / mean_plan_ms(post, None, &eval);

    assert!(
        op.counters().promotions >= 1,
        "the loop must promote at least one fine-tuned model post-drift: {}",
        op.counters()
    );
    assert!(
        frozen_post > r0 * 1.15,
        "the frozen model must degrade under drift: pre {r0:.3} post {frozen_post:.3}"
    );
    assert!(
        online_final <= r0 * 1.10,
        "the online model must recover to within 10% of pre-drift: r0 {r0:.3} final {online_final:.3} (frozen post {frozen_post:.3})"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
