//! Concurrency suite for the supervised serving loop.
//!
//! Three guarantees are exercised here:
//! 1. worker count is invisible in results: `--workers 1` and `--workers 4`
//!    over the same request stream choose bitwise-identical plans and report
//!    identical per-outcome counter totals;
//! 2. a pool of real worker threads under full chaos (injected NaNs, stalls
//!    and panics) never deadlocks and never loses a request — accounting is
//!    conserved exactly: admitted = served_neural + served_classical + failed;
//! 3. an injected planner panic on one worker is contained by the per-request
//!    boundary: the worker stays alive and keeps serving the rest of the
//!    stream.
//!
//! Set `QPS_CHAOS_SEED` to vary every fault schedule (CI sweeps seeds).

use qpseeker_repro::core::prelude::*;
use qpseeker_repro::engine::prelude::*;
use qpseeker_repro::storage::{Database, FaultConfig};
use qpseeker_repro::workloads::{synthetic, Qep, SyntheticConfig};
use std::sync::{Arc, OnceLock};

fn shared_db() -> &'static Arc<Database> {
    static DB: OnceLock<Arc<Database>> = OnceLock::new();
    DB.get_or_init(|| Arc::new(qpseeker_repro::storage::datagen::imdb::generate(0.04, 2)))
}

/// One fitted model shared by every test; `PlannerModel` is `Send + Sync`,
/// so all worker pools in this binary serve from this single instance.
fn shared_model() -> &'static PlannerModel {
    static MODEL: OnceLock<PlannerModel> = OnceLock::new();
    MODEL.get_or_init(|| {
        let db = shared_db();
        let w = synthetic::generate(db, &SyntheticConfig { n_queries: 12, seed: 3 });
        let refs: Vec<&Qep> = w.qeps.iter().collect();
        let mut model = QPSeeker::new(db, ModelConfig::small());
        model.fit(&refs).expect("training succeeds");
        model
    })
}

fn chaos_seed() -> u64 {
    std::env::var("QPS_CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0)
}

fn queries(n: usize, seed: u64) -> Vec<Query> {
    synthetic::generate_queries(shared_db(), &SyntheticConfig { n_queries: n, seed })
        .into_iter()
        .map(|(q, _sql)| q)
        .collect()
}

/// The model type shared across worker threads must be `Send + Sync`; this
/// is a compile-time assertion, not a runtime check.
#[test]
fn planner_model_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PlannerModel>();
    assert_send_sync::<QPSeeker>();
    assert_send_sync::<Arc<PlannerModel>>();
}

/// A supervisor config in which nothing is timing- or worker-count-
/// dependent: simulation-capped MCTS (never wall-clock), a breaker that can
/// never trip (threshold above 1.0), and deadlines/queue bounds generous
/// enough that no request is ever shed.
fn deterministic_cfg(workers: usize) -> SupervisorConfig {
    SupervisorConfig {
        serve: ServeConfig {
            mcts: MctsConfig { budget_ms: 1e9, max_simulations: 16, ..MctsConfig::default() },
            strategy: Default::default(),
            deadline_ms: 1e12,
            max_retries: 1,
            backoff_base_ms: 0.0,
            faults: None,
        },
        window: 16,
        min_samples: 8,
        failure_threshold: 2.0, // a rate can never exceed 1.0: breaker never opens
        cooldown_queries: 8,
        probe_successes: 3,
        queue_capacity: 4096,
        service_ms: 5.0,
        workers,
        cache: None,
        broker: None,
    }
}

fn gentle_requests(n: usize, qseed: u64) -> Vec<QueryRequest> {
    queries(n, qseed)
        .into_iter()
        .enumerate()
        .map(|(i, query)| {
            let arrival_ms = i as f64;
            QueryRequest { query, arrival_ms, deadline_ms: 1e12 }
        })
        .collect()
}

/// Acceptance: the same request stream through 1 worker and through 4
/// workers produces bitwise-identical plan choices (MCTS is seeded per
/// query, caches change warmth but never values) and identical counter
/// totals — order-independent, since tallies are merged exactly.
#[test]
fn worker_counts_produce_identical_plans_and_counters() {
    let db = shared_db();
    let model = shared_model();
    let stream = gentle_requests(14, 0xd17e ^ chaos_seed());

    let run = |workers: usize| {
        let mut sup = Supervisor::new(deterministic_cfg(workers));
        let outcomes = sup.run(db, Some(model), &stream);
        (outcomes, sup.counters())
    };
    let (ref_outcomes, ref_counters) = run(1);
    assert_eq!(ref_counters.admitted, stream.len(), "generous bounds must admit everything");
    assert!(ref_counters.conservation_holds(), "{ref_counters}");

    for workers in [2usize, 4] {
        let (outcomes, counters) = run(workers);
        assert_eq!(counters, ref_counters, "counters diverged at {workers} workers");
        assert_eq!(outcomes.len(), ref_outcomes.len());
        for (a, b) in ref_outcomes.iter().zip(&outcomes) {
            assert_eq!(a.query_id, b.query_id, "outcome order must follow arrival order");
            let (ra, rb) = match (&a.disposition, &b.disposition) {
                (Disposition::Served(ra), Disposition::Served(rb)) => (ra, rb),
                other => panic!("non-served disposition in deterministic stream: {other:?}"),
            };
            assert_eq!(ra.served_by, rb.served_by, "query {}", a.query_id);
            assert_eq!(
                ra.plan, rb.plan,
                "query {}: plan choice diverged at {workers} workers",
                a.query_id
            );
            // Bitwise, not approximate: the same model over the same seeded
            // search must produce the same float.
            assert_eq!(
                ra.predicted_ms.map(f64::to_bits),
                rb.predicted_ms.map(f64::to_bits),
                "query {}: prediction diverged at {workers} workers",
                a.query_id
            );
        }
    }
}

/// Seed matrix for batched evaluation: with `batch_eval` explicitly on (the
/// default 16) and explicitly off (1), every worker count must pick
/// bitwise-identical plans *within* that mode. Batching defers backups, so
/// it may legally explore a budget-capped search differently from the
/// scalar schedule — but it must never make results depend on the worker
/// count, which is PR4's cross-worker invariant extended to batches.
#[test]
fn batched_eval_is_identical_across_worker_counts() {
    let db = shared_db();
    let model = shared_model();

    for batch_eval in [1usize, 16] {
        let stream = gentle_requests(10, 0xba7c ^ chaos_seed());
        let run = |workers: usize| {
            let mut cfg = deterministic_cfg(workers);
            cfg.serve.mcts.batch_eval = batch_eval;
            let mut sup = Supervisor::new(cfg);
            sup.run(db, Some(model), &stream)
        };
        let reference = run(1);
        for workers in [2usize, 4] {
            let outcomes = run(workers);
            assert_eq!(outcomes.len(), reference.len());
            for (a, b) in reference.iter().zip(&outcomes) {
                let (ra, rb) = match (&a.disposition, &b.disposition) {
                    (Disposition::Served(ra), Disposition::Served(rb)) => (ra, rb),
                    other => panic!("non-served disposition in deterministic stream: {other:?}"),
                };
                assert_eq!(
                    ra.plan, rb.plan,
                    "query {}: batch_eval={batch_eval} plan diverged at {workers} workers",
                    a.query_id
                );
                assert_eq!(
                    ra.predicted_ms.map(f64::to_bits),
                    rb.predicted_ms.map(f64::to_bits),
                    "query {}: batch_eval={batch_eval} prediction diverged at {workers} workers",
                    a.query_id
                );
            }
        }
    }
}

/// Stress: 4 workers × 500 queries under every fault class at once
/// (NaNs, stalls, panics, storage faults). The run must terminate (no
/// deadlock, no dead worker), return one outcome per request, and conserve
/// accounting exactly.
#[test]
fn stress_pool_under_chaos_conserves_accounting() {
    let db = shared_db();
    let model = shared_model();
    let n = 500;
    let qs = queries(n, 0x57e55 ^ chaos_seed());
    // Tight spacing against a bounded queue and finite deadlines: some
    // requests shed, which the conservation law must also account for.
    let stream: Vec<QueryRequest> = qs
        .into_iter()
        .enumerate()
        .map(|(i, query)| {
            let arrival_ms = i as f64 * 1.5;
            QueryRequest { query, arrival_ms, deadline_ms: arrival_ms + 60.0 }
        })
        .collect();

    let mut sup = Supervisor::new(SupervisorConfig {
        serve: ServeConfig {
            mcts: MctsConfig { budget_ms: 10.0, max_simulations: 6, ..MctsConfig::default() },
            strategy: Default::default(),
            deadline_ms: 10_000.0,
            max_retries: 1,
            backoff_base_ms: 0.0,
            faults: Some(FaultConfig::chaos(0xc0de ^ chaos_seed(), 0.1)),
        },
        window: 16,
        min_samples: 8,
        failure_threshold: 0.9,
        cooldown_queries: 8,
        probe_successes: 3,
        queue_capacity: 16,
        service_ms: 5.0,
        workers: 4,
        cache: None,
        broker: None,
    });
    let outcomes = sup.run(db, Some(model), &stream);

    assert_eq!(outcomes.len(), stream.len(), "every request must get a disposition");
    let c = sup.counters();
    assert_eq!(c.total_seen(), stream.len());
    assert!(c.conservation_holds(), "accounting not conserved: {c}");
    // The chaos mix must actually exercise both served paths.
    assert!(c.served_neural > 0, "no query served neurally under p=0.1 chaos");
    assert!(c.served_classical > 0, "no query degraded under p=0.1 chaos");
    // Dispositions and counters must tell the same story.
    let (mut served, mut shed, mut failed) = (0usize, 0usize, 0usize);
    for o in &outcomes {
        match &o.disposition {
            Disposition::Served(r) => {
                served += 1;
                r.plan
                    .validate(&stream.iter().find(|q| q.query.id == o.query_id).unwrap().query)
                    .unwrap_or_else(|e| panic!("query {}: invalid served plan: {e}", o.query_id));
            }
            Disposition::Shed(_) => shed += 1,
            Disposition::Failed(_) => failed += 1,
        }
    }
    assert_eq!(served, c.served_neural + c.served_classical);
    assert_eq!(shed, c.total_shed());
    assert_eq!(failed, c.failed);
}

/// A planner panic on one worker must not take the pool down: with panics
/// injected into every neural attempt, all four workers survive the whole
/// stream, every admitted request is still served (classically), and every
/// degradation records `PlannerPanicked`.
#[test]
fn injected_panics_never_kill_workers() {
    let db = shared_db();
    let model = shared_model();
    let stream = gentle_requests(24, 0x9a71c ^ chaos_seed());

    let mut cfg = deterministic_cfg(4);
    cfg.serve.faults = Some(FaultConfig {
        seed: 0xdead ^ chaos_seed(),
        inference_panic_p: 1.0,
        ..FaultConfig::default()
    });
    let mut sup = Supervisor::new(cfg);
    let outcomes = sup.run(db, Some(model), &stream);

    assert_eq!(outcomes.len(), stream.len());
    let c = sup.counters();
    assert!(c.conservation_holds(), "{c}");
    assert_eq!(c.admitted, stream.len());
    assert_eq!(c.failed, 0, "panics inside the planner must degrade, not fail, the request");
    assert_eq!(c.served_classical, stream.len());
    for o in &outcomes {
        match &o.disposition {
            Disposition::Served(r) => {
                assert_eq!(r.served_by, ServedBy::Classical);
                assert!(
                    r.attempt_failures
                        .iter()
                        .all(|f| matches!(f, FallbackReason::PlannerPanicked(_))),
                    "query {}: expected only PlannerPanicked, got {:?}",
                    o.query_id,
                    r.attempt_failures
                );
            }
            other => panic!("query {}: unexpected disposition {other:?}", o.query_id),
        }
    }
}

/// Root-parallel in-query search extended to the serving loop: for every
/// shard count `parallel_sims ∈ {1, 2, 4}` and every worker count, the
/// stream produces bitwise-identical plans and predictions — and all shard
/// counts match *each other*, because unit seeds and simulation budgets
/// derive from unit indices, never from the thread that ran them.
#[test]
fn root_parallel_shards_identical_across_worker_counts() {
    let db = shared_db();
    let model = shared_model();
    let stream = gentle_requests(10, 0x5a4d ^ chaos_seed());

    let run = |workers: usize, shards: usize| {
        let mut cfg = deterministic_cfg(workers);
        cfg.serve.mcts.parallel_sims = shards;
        let mut sup = Supervisor::new(cfg);
        sup.run(db, Some(model), &stream)
    };
    let reference = run(1, 1);
    for shards in [1usize, 2, 4] {
        for workers in [1usize, 2, 4] {
            if (workers, shards) == (1, 1) {
                continue;
            }
            let outcomes = run(workers, shards);
            assert_eq!(outcomes.len(), reference.len());
            for (a, b) in reference.iter().zip(&outcomes) {
                let (ra, rb) = match (&a.disposition, &b.disposition) {
                    (Disposition::Served(ra), Disposition::Served(rb)) => (ra, rb),
                    other => panic!("non-served disposition in deterministic stream: {other:?}"),
                };
                assert_eq!(
                    ra.plan, rb.plan,
                    "query {}: plan diverged at workers={workers} parallel_sims={shards}",
                    a.query_id
                );
                assert_eq!(
                    ra.predicted_ms.map(f64::to_bits),
                    rb.predicted_ms.map(f64::to_bits),
                    "query {}: prediction diverged at workers={workers} parallel_sims={shards}",
                    a.query_id
                );
            }
        }
    }
}
