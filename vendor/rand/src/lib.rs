//! Offline, in-workspace reimplementation of the subset of the `rand 0.8`
//! API this repository uses: `StdRng` + `SeedableRng::seed_from_u64`,
//! `Rng::{gen, gen_range, gen_bool}` and `seq::SliceRandom`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the handful of external crates it depends on as minimal local
//! implementations (see `vendor/`). This crate is deterministic and
//! dependency-free: `StdRng` is xoshiro256++ seeded through SplitMix64,
//! which is more than enough statistical quality for data generation and
//! property tests (it is not, and does not need to be, cryptographic).

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: everything is derived from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction; only `seed_from_u64` is used in this workspace.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `Rng::gen` can produce.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types `gen_range` can sample uniformly. The per-type sampling
/// primitive lives here so that `SampleRange` below can be a single
/// blanket impl per range shape — that blanket impl is what lets the
/// compiler unify unsuffixed literals like `gen_range(0..3)` with the
/// type demanded by the surrounding context (e.g. `usize` from indexing),
/// exactly as real `rand` does.
pub trait SampleUniform: Sized + PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                let span = (hi as i128).wrapping_sub(lo as i128) as u128 + inclusive as u128;
                let r = rng.next_u64() as u128 % span;
                ((lo as i128).wrapping_add(r as i128)) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(lo: $t, hi: $t, _inclusive: bool, rng: &mut R) -> $t {
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_range(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty inclusive range");
        T::sample_range(lo, hi, true, rng)
    }
}

/// User-facing convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_in(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — a small, fast, high-quality non-cryptographic PRNG.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_state(mut sm: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into 256 bits of state.
            let mut next = || {
                sm = sm.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng::from_state(seed)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Slice shuffling and random element selection (Fisher–Yates).
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = crate::SampleRange::sample_in(0..=i, rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[crate::SampleRange::sample_in(0..self.len(), rng)])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = rng.gen_range(3usize..=9);
            assert!((3..=9).contains(&u));
        }
    }

    #[test]
    fn uniform_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
