//! Offline, in-workspace shim for the subset of `proptest` this repository
//! uses: the `proptest!` macro with `#![proptest_config(..)]`, range and
//! tuple strategies, `collection::vec`, `sample::select`, `bool::ANY`,
//! `prop_map`, `prop_flat_map`, and the `prop_assert*` macros.
//!
//! Semantics: each test function runs `ProptestConfig::cases` iterations
//! with a deterministic per-case RNG; a failed `prop_assert!` panics with
//! the case number (so failures are reproducible by construction). There
//! is no shrinking — inputs here are already small by strategy design.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Deterministic per-case RNG handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    pub fn for_case(case: u32) -> Self {
        // Distinct, seed-stable stream per case.
        TestRng(StdRng::seed_from_u64(
            0x5eed_0000_0000_0000 ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        ))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values; the `Value` associated type mirrors proptest.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<O, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        O: Strategy,
        F: Fn(Self::Value) -> O,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Dependent generation: the inner value picks the outer strategy.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Strategy, F: Fn(S::Value) -> O> Strategy for FlatMap<S, F> {
    type Value = O::Value;

    fn generate(&self, rng: &mut TestRng) -> O::Value {
        let mid = self.inner.generate(rng);
        (self.f)(mid).generate(rng)
    }
}

pub mod sample {
    use super::{Rng, Strategy, TestRng};

    /// Uniformly picks one of the given values (proptest's `sample::select`).
    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "sample::select: empty choices");
        Select { items }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.items[rng.gen_range(0..self.items.len())].clone()
        }
    }
}

pub mod bool {
    use super::{Rng, Strategy, TestRng};

    /// Uniform boolean (proptest's `bool::ANY`).
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen_range(0u32..2) == 1
        }
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($s:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

pub mod collection {
    use super::{Rng, Strategy, TestRng};
    use std::ops::Range;

    /// Element count for `collection::vec`: an exact size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_exclusive: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "collection::vec: empty size range");
            SizeRange { lo: r.start, hi_exclusive: r.end }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Run `cases` iterations of the proptest-style function bodies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@runner ($cfg) $($rest)*);
    };
    (@runner ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::TestRng::for_case(__case);
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body Ok(()) })();
                    if let ::std::result::Result::Err(__msg) = __outcome {
                        panic!("proptest `{}` failed on case {}: {}",
                               stringify!($name), __case, __msg);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@runner ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {} — {}", stringify!($cond), format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__l, __r) = (&$a, &$b);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(
                format!("assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                        stringify!($a), stringify!($b), __l, __r));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$a, &$b);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(
                format!("assertion failed: `{} == {}` — {}\n  left: {:?}\n right: {:?}",
                        stringify!($a), stringify!($b), format!($($fmt)+), __l, __r));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__l, __r) = (&$a, &$b);
        if *__l == *__r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                __l
            ));
        }
    }};
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens() -> impl Strategy<Value = u64> {
        (0u64..100).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in -5i64..5, f in 0.0f64..1.0, (a, b) in (1usize..4, 1usize..4)) {
            prop_assert!((-5..5).contains(&x));
            prop_assert!((0.0..1.0).contains(&f));
            prop_assert!(a < 4 && b < 4, "a={} b={}", a, b);
        }

        #[test]
        fn vec_sizes(v in crate::collection::vec(0i64..10, 3..7), w in crate::collection::vec(0i64..10, 5)) {
            prop_assert!(v.len() >= 3 && v.len() < 7);
            prop_assert_eq!(w.len(), 5);
        }

        #[test]
        fn mapped(e in evens()) {
            prop_assert_eq!(e % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut r1 = TestRng::for_case(3);
        let mut r2 = TestRng::for_case(3);
        let s = 0u64..1000;
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }
}
