//! Offline, in-workspace stub for the slice of `criterion` this repo's
//! `benches/micro.rs` uses: `Criterion::{default, sample_size,
//! bench_function}`, `Bencher::{iter, iter_with_setup}`, and the
//! `criterion_group!` / `criterion_main!` macros. It reports min/mean
//! wall-clock per iteration — enough to compare hot paths locally, with
//! no statistics machinery.

use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { samples: Vec::with_capacity(self.sample_size) };
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        let n = b.samples.len().max(1);
        let total: Duration = b.samples.iter().sum();
        let min = b.samples.iter().min().copied().unwrap_or_default();
        println!(
            "bench {name:<40} mean {:>12.3?} min {:>12.3?} ({n} samples)",
            total / n as u32,
            min
        );
        self
    }
}

pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.samples.push(start.elapsed());
    }

    pub fn iter_with_setup<S, O, FS, F>(&mut self, mut setup: FS, mut routine: F)
    where
        FS: FnMut() -> S,
        F: FnMut(S) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.samples.push(start.elapsed());
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
