//! Offline `#[derive(Serialize, Deserialize)]` for the vendored `serde`
//! value model (`serde::Value`).
//!
//! The real `serde_derive` depends on `syn`/`quote`, which are unavailable
//! in this offline build environment, so this crate parses the item token
//! stream by hand. It supports exactly the shapes this workspace derives
//! on: non-generic named-field structs, tuple structs, and enums with
//! unit / tuple / struct variants (serialized in serde's externally-tagged
//! JSON layout). Anything else produces a compile error rather than wrong
//! code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone)]
enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<Variant> },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().expect("valid compile_error tokens")
}

/// Skip `#[...]` attribute groups and `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(it: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    loop {
        match it.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                it.next();
                // The bracketed attribute body.
                it.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                it.next();
                if let Some(TokenTree::Group(g)) = it.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        it.next();
                    }
                }
            }
            _ => return,
        }
    }
}

/// Parse the named fields of `{ a: T, pub b: U, ... }`, returning the names.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut it = body.into_iter().peekable();
    let mut names = Vec::new();
    loop {
        skip_attrs_and_vis(&mut it);
        let name = match it.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("expected field name, found `{other}`")),
        };
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field `{name}`, found {other:?}")),
        }
        names.push(name);
        // Consume the type, tracking `<...>` nesting so commas inside
        // generic arguments don't terminate the field early.
        let mut angle = 0i32;
        for tok in it.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                _ => {}
            }
        }
    }
    Ok(names)
}

/// Count the fields of a tuple struct / tuple variant body `(T, U, ...)`.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut angle = 0i32;
    let mut fields = 0usize;
    let mut saw_tokens = false;
    let mut last_was_comma = false;
    for tok in body {
        saw_tokens = true;
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle += 1;
                last_was_comma = false;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle -= 1;
                last_was_comma = false;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                fields += 1;
                last_was_comma = true;
            }
            _ => last_was_comma = false,
        }
    }
    if !saw_tokens {
        0
    } else if last_was_comma {
        fields
    } else {
        fields + 1
    }
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let mut it = body.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut it);
        let name = match it.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("expected variant name, found `{other}`")),
        };
        let fields = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                it.next();
                Fields::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let names = parse_named_fields(g.stream())?;
                it.next();
                Fields::Named(names)
            }
            _ => Fields::Unit,
        };
        // Optional explicit discriminant, then the separating comma.
        let mut depth = 0i32;
        while let Some(tok) = it.peek() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    it.next();
                    break;
                }
                TokenTree::Punct(p) if p.as_char() == '<' => {
                    depth += 1;
                    it.next();
                }
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    depth -= 1;
                    it.next();
                }
                _ => {
                    it.next();
                }
            }
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut it = input.into_iter().peekable();
    skip_attrs_and_vis(&mut it);
    let kind = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    if kind != "struct" && kind != "enum" {
        return Err(format!("expected `struct` or `enum`, found `{kind}`"));
    }
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = it.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "the vendored serde_derive does not support generic type `{name}`"
            ));
        }
    }
    if kind == "enum" {
        match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::Enum { name, variants: parse_variants(g.stream())? })
            }
            other => Err(format!("expected enum body, found {other:?}")),
        }
    } else {
        match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::Struct { name, fields: Fields::Named(parse_named_fields(g.stream())?) })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Item::Struct { name, fields: Fields::Tuple(count_tuple_fields(g.stream())) })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                Ok(Item::Struct { name, fields: Fields::Unit })
            }
            other => Err(format!("expected struct body, found {other:?}")),
        }
    }
}

// ---------------------------------------------------------------- Serialize

fn ser_named(names: &[String], access: &str) -> String {
    let entries: Vec<String> = names
        .iter()
        .map(|n| format!("({n:?}.to_string(), ::serde::Serialize::to_value({access}{n}))"))
        .collect();
    format!("::serde::Value::Obj(vec![{}])", entries.join(", "))
}

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => ser_named(names, "&self."),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Arr(vec![{}])", elems.join(", "))
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            (name, body)
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str({vn:?}.to_string()),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Value::Obj(vec![({vn:?}.to_string(), \
                             ::serde::Serialize::to_value(f0))]),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({binds}) => ::serde::Value::Obj(vec![({vn:?}.to_string(), \
                                 ::serde::Value::Arr(vec![{elems}]))]),",
                                binds = binds.join(", "),
                                elems = elems.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "({f:?}.to_string(), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Obj(vec![({vn:?}.to_string(), \
                                 ::serde::Value::Obj(vec![{entries}]))]),",
                                entries = entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            (name, format!("match self {{ {} }}", arms.join("\n")))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

// -------------------------------------------------------------- Deserialize

fn de_named_fields(type_label: &str, names: &[String]) -> String {
    let fields: Vec<String> = names
        .iter()
        .map(|n| {
            format!(
                "{n}: ::serde::Deserialize::from_value(::serde::obj_field(__obj, {n:?}))\
                 .map_err(|e| e.in_field({type_label:?}, {n:?}))?"
            )
        })
        .collect();
    fields.join(", ")
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => {
                    let inner = de_named_fields(name, names);
                    format!(
                        "let __obj = v.as_obj().ok_or_else(|| \
                         ::serde::Error::type_mismatch({name:?}, \"object\", v))?;\n\
                         Ok({name} {{ {inner} }})"
                    )
                }
                Fields::Tuple(1) => format!("Ok({name}(::serde::Deserialize::from_value(v)?))"),
                Fields::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                        .collect();
                    format!(
                        "let __arr = v.as_arr().ok_or_else(|| \
                         ::serde::Error::type_mismatch({name:?}, \"array\", v))?;\n\
                         if __arr.len() != {n} {{ return Err(::serde::Error::msg(format!(\
                         \"{name}: expected {n} elements, got {{}}\", __arr.len()))); }}\n\
                         Ok({name}({elems}))",
                        elems = elems.join(", ")
                    )
                }
                Fields::Unit => format!("Ok({name})"),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("{vn:?} => Ok({name}::{vn}),", vn = v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    let label = format!("{name}::{vn}");
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Tuple(1) => Some(format!(
                            "{vn:?} => Ok({name}::{vn}(::serde::Deserialize::from_value(__payload)\
                             .map_err(|e| e.in_field({label:?}, \"0\"))?)),"
                        )),
                        Fields::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                                .collect();
                            Some(format!(
                                "{vn:?} => {{\n\
                                     let __arr = __payload.as_arr().ok_or_else(|| \
                                     ::serde::Error::type_mismatch({label:?}, \"array\", __payload))?;\n\
                                     if __arr.len() != {n} {{ return Err(::serde::Error::msg(format!(\
                                     \"{label}: expected {n} elements, got {{}}\", __arr.len()))); }}\n\
                                     Ok({name}::{vn}({elems}))\n\
                                 }},",
                                elems = elems.join(", ")
                            ))
                        }
                        Fields::Named(fields) => {
                            let inner = de_named_fields(&label, fields);
                            Some(format!(
                                "{vn:?} => {{\n\
                                     let __obj = __payload.as_obj().ok_or_else(|| \
                                     ::serde::Error::type_mismatch({label:?}, \"object\", __payload))?;\n\
                                     Ok({name}::{vn} {{ {inner} }})\n\
                                 }},"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {unit_arms}\n\
                                 __other => Err(::serde::Error::msg(format!(\
                                 \"{name}: unknown variant `{{__other}}`\"))),\n\
                             }},\n\
                             ::serde::Value::Obj(__o) if __o.len() == 1 => {{\n\
                                 let __payload = &__o[0].1;\n\
                                 match __o[0].0.as_str() {{\n\
                                     {tagged_arms}\n\
                                     __other => Err(::serde::Error::msg(format!(\
                                     \"{name}: unknown variant `{{__other}}`\"))),\n\
                                 }}\n\
                             }}\n\
                             __other => Err(::serde::Error::type_mismatch({name:?}, \
                             \"string or single-key object\", __other)),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms = unit_arms.join("\n"),
                tagged_arms = tagged_arms.join("\n")
            )
        }
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde_derive codegen error: {e}"))),
        Err(e) => compile_error(&e),
    }
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde_derive codegen error: {e}"))),
        Err(e) => compile_error(&e),
    }
}
