//! Offline, in-workspace shim for `crossbeam::scope`, backed by
//! `std::thread::scope` (stable since Rust 1.63, which post-dates the
//! crossbeam API this workspace was written against). Only the scoped
//! spawn/join surface is provided.

use std::panic::AssertUnwindSafe;
use std::thread;

/// Mirrors `crossbeam::thread::Scope`: spawn closures receive `&Scope` so
/// they can spawn further scoped threads.
#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

pub struct ScopedJoinHandle<'scope, T> {
    inner: thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    pub fn join(self) -> thread::Result<T> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let shim = *self;
        ScopedJoinHandle { inner: self.inner.spawn(move || f(&shim)) }
    }
}

/// Like `crossbeam::scope`: runs `f` with a scope handle, joining all
/// spawned threads before returning. A panic from the closure or from an
/// unjoined child thread surfaces as `Err`, matching crossbeam's contract.
pub fn scope<'env, F, R>(f: F) -> thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::panic::catch_unwind(AssertUnwindSafe(|| thread::scope(|s| f(&Scope { inner: s }))))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_join_and_borrow() {
        let data = [1u64, 2, 3, 4];
        let total = super::scope(|s| {
            let handles: Vec<_> =
                data.chunks(2).map(|c| s.spawn(move |_| c.iter().sum::<u64>())).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn child_panic_is_err() {
        let r = super::scope(|s| {
            let h = s.spawn(|_| panic!("boom"));
            h.join().is_err()
        });
        assert!(r.unwrap());
    }
}
