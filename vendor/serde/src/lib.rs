//! Offline, in-workspace stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this crate provides
//! the small serialization surface the workspace actually uses: a
//! JSON-shaped [`Value`] model, [`Serialize`]/[`Deserialize`] traits that
//! convert to and from it, and `#[derive(Serialize, Deserialize)]` re-
//! exported from the vendored `serde_derive`. `serde_json` (also vendored)
//! renders [`Value`] to JSON text and parses it back.
//!
//! Differences from real serde worth knowing about:
//! - Serialization is eager (`T -> Value -> text`), not visitor-based.
//! - Non-finite floats serialize to `null` (as `serde_json` does) and
//!   `null` deserializes to `f32::NAN`/`f64::NAN` so that round-tripping a
//!   tensor that contains NaN is total rather than an error.
//! - Enums use serde's externally-tagged JSON layout.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// A JSON-shaped dynamic value. Object fields keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// Object field lookup; `None` when `self` is not an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// Short label for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// Field lookup used by derived `Deserialize` impls: missing fields read
/// as `null`, which lets `Option` fields default to `None` and gives every
/// other type a clear type-mismatch error.
pub fn obj_field<'a>(obj: &'a [(String, Value)], name: &str) -> &'a Value {
    obj.iter().find(|(k, _)| k == name).map(|(_, v)| v).unwrap_or(&NULL)
}

/// Serialization/deserialization error (also re-exported as
/// `serde_json::Error`).
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn msg(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }

    pub fn type_mismatch(ty: &str, expected: &str, got: &Value) -> Self {
        Error::msg(format!("{ty}: expected {expected}, got {}", got.kind()))
    }

    /// Wrap with field context while bubbling out of a derived impl.
    pub fn in_field(self, ty: &str, field: &str) -> Self {
        Error::msg(format!("{ty}.{field}: {}", self.msg))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

pub trait Serialize {
    fn to_value(&self) -> Value;
}

pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ------------------------------------------------------------ std impls

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::type_mismatch("bool", "bool", v))
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v.as_i64().ok_or_else(|| Error::type_mismatch(stringify!($t), "integer", v))?;
                <$t>::try_from(i).map_err(|_| Error::msg(format!(
                    concat!(stringify!($t), ": value {} out of range"), i)))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let u = v.as_u64().ok_or_else(|| Error::type_mismatch(stringify!($t), "integer", v))?;
                <$t>::try_from(u).map_err(|_| Error::msg(format!(
                    concat!(stringify!($t), ": value {} out of range"), u)))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let f = *self as f64;
                if f.is_finite() { Value::Float(f) } else { Value::Null }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    // Non-finite floats serialize as null; read them back as NaN.
                    Value::Null => Ok(<$t>::NAN),
                    _ => v.as_f64()
                        .map(|f| f as $t)
                        .ok_or_else(|| Error::type_mismatch(stringify!($t), "number", v)),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(|s| s.to_string()).ok_or_else(|| Error::type_mismatch("String", "string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::type_mismatch("char", "string", v))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::msg(format!("char: expected 1-char string, got {s:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_arr()
            .ok_or_else(|| Error::type_mismatch("Vec", "array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let arr = v.as_arr().ok_or_else(|| Error::type_mismatch("array", "array", v))?;
        if arr.len() != N {
            return Err(Error::msg(format!("array: expected {N} elements, got {}", arr.len())));
        }
        let items: Vec<T> = arr.iter().map(T::from_value).collect::<Result<_, _>>()?;
        items.try_into().map_err(|_| Error::msg("array: length mismatch after conversion"))
    }
}

macro_rules! impl_tuple {
    ($n:literal => $($t:ident . $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let arr = v.as_arr().ok_or_else(|| Error::type_mismatch("tuple", "array", v))?;
                if arr.len() != $n {
                    return Err(Error::msg(format!(
                        "tuple: expected {} elements, got {}", $n, arr.len())));
                }
                Ok(($($t::from_value(&arr[$idx])?,)+))
            }
        }
    };
}
impl_tuple!(1 => A.0);
impl_tuple!(2 => A.0, B.1);
impl_tuple!(3 => A.0, B.1, C.2);
impl_tuple!(4 => A.0, B.1, C.2, D.3);

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sorted for deterministic output (real serde_json leaves HashMap
        // order unspecified; determinism matters for checksummed payloads).
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        Value::Obj(keys.into_iter().map(|k| (k.clone(), self[k].to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_obj()
            .ok_or_else(|| Error::type_mismatch("HashMap", "object", v))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_obj()
            .ok_or_else(|| Error::type_mismatch("BTreeMap", "object", v))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
