//! Offline, in-workspace JSON layer over the vendored `serde` value model:
//! `to_string`, `to_string_pretty`, and `from_str`, plus `to_value` /
//! `from_value` passthroughs. Floats print with Rust's shortest
//! round-trip formatting; non-finite floats print as `null` (matching
//! real `serde_json`'s lossy behavior).

pub use serde::Error;
pub use serde::Value;
use serde::{Deserialize, Serialize};

pub fn to_value<T: Serialize>(v: &T) -> Value {
    v.to_value()
}

pub fn from_value<T: Deserialize>(v: &Value) -> Result<T, Error> {
    T::from_value(v)
}

pub fn to_string<T: Serialize + ?Sized>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&v.to_value(), &mut out, None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&v.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    T::from_value(&parse(s)?)
}

/// Parse JSON text into a [`Value`].
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

// ------------------------------------------------------------------ writer

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{}` on f64 is shortest-round-trip; force a float marker so
                // integral floats re-parse as numbers, not integers-only text.
                let s = f.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Obj(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            if !fields.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------------ parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::msg(format!("JSON parse error at byte {}: {msg}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(self.err(&format!("unexpected byte `{}`", b as char))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            out.push(cp);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    /// `self.pos` is on the `u`; consumes `uXXXX` (and a low surrogate pair
    /// if needed), returning the decoded char.
    fn unicode_escape(&mut self) -> Result<char, Error> {
        self.pos += 1;
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: expect `\uXXXX` low surrogate.
            if self.peek() == Some(b'\\') {
                self.pos += 1;
                if self.peek() == Some(b'u') {
                    self.pos += 1;
                    let lo = self.hex4()?;
                    if (0xDC00..0xE000).contains(&lo) {
                        let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                        return char::from_u32(cp)
                            .ok_or_else(|| self.err("invalid surrogate pair"));
                    }
                }
            }
            return Err(self.err("unpaired surrogate in \\u escape"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char).to_digit(16).ok_or_else(|| self.err("invalid hex digit"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err(&format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42i64).unwrap(), "42");
        assert_eq!(from_str::<i64>("42").unwrap(), 42);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b\n").unwrap(), r#""a\"b\n""#);
        assert_eq!(from_str::<String>(r#""a\"b\n""#).unwrap(), "a\"b\n");
    }

    #[test]
    fn float_roundtrip_exact() {
        for &f in &[0.1f64, 1e-308, 12345.6789, -7.25, f64::MAX, f64::MIN_POSITIVE] {
            let s = to_string(&f).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), f, "via {s}");
        }
        for &f in &[0.1f32, 3.4e38f32, -1.25e-20] {
            let s = to_string(&f).unwrap();
            assert_eq!(from_str::<f32>(&s).unwrap(), f, "via {s}");
        }
    }

    #[test]
    fn nan_serializes_to_null_and_back() {
        let s = to_string(&f64::NAN).unwrap();
        assert_eq!(s, "null");
        assert!(from_str::<f64>(&s).unwrap().is_nan());
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1.0f64, 2.0f64), (3.5, -4.5)];
        let s = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<(f64, f64)>>(&s).unwrap(), v);
        let opt: Option<Vec<u32>> = Some(vec![1, 2, 3]);
        let s = to_string(&opt).unwrap();
        assert_eq!(from_str::<Option<Vec<u32>>>(&s).unwrap(), opt);
        assert_eq!(from_str::<Option<Vec<u32>>>("null").unwrap(), None);
    }

    #[test]
    fn pretty_output_parses() {
        let v = Value::Obj(vec![
            ("a".into(), Value::Arr(vec![Value::Int(1), Value::Int(2)])),
            ("b".into(), Value::Str("x".into())),
        ]);
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        assert_eq!(parse(&s).unwrap(), v);
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(from_str::<String>(r#""é😀""#).unwrap(), "é😀");
    }
}
