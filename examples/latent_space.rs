//! Latent-space exploration (paper Fig. 5): train the cost modeler on
//! sampled JOB QEPs, project the 32-d latent means of the evaluation QEPs
//! to 2-d with t-SNE, and print a CSV (x, y, template) plus a silhouette
//! score quantifying per-template clustering.
//!
//! ```sh
//! cargo run --release --example latent_space > latent.csv
//! ```

use qpseeker_repro::core::prelude::*;
use qpseeker_repro::workloads::{job, JobConfig};
use std::collections::HashMap;

fn main() {
    let db = std::sync::Arc::new(qpseeker_repro::storage::datagen::imdb::generate(0.1, 31));
    let workload = job::generate(
        &db,
        &JobConfig { n_queries: 30, n_templates: 8, target_qeps: 400, ..Default::default() },
    );
    eprintln!("JOB workload: {} QEPs from {} queries", workload.num_qeps(), workload.num_queries());

    let (train, _) = workload.split(0.8, true);
    let mut model = QPSeeker::new(&db, ModelConfig::small());
    model.fit(&train).expect("training succeeds");

    // Latents of up to 250 QEPs.
    let cap = 250.min(workload.qeps.len());
    let stride = (workload.qeps.len() / cap).max(1);
    let mut latents = Vec::new();
    let mut labels = Vec::new();
    let mut label_ids: HashMap<String, usize> = HashMap::new();
    let mut templates = Vec::new();
    for qep in workload.qeps.iter().step_by(stride).take(cap) {
        latents.push(model.latent_mu(&qep.query, &qep.plan));
        let next = label_ids.len();
        labels.push(*label_ids.entry(qep.template.clone()).or_insert(next));
        templates.push(qep.template.clone());
    }

    let coords = tsne(&latents, &TsneConfig::default());
    println!("x,y,template");
    for (c, t) in coords.iter().zip(&templates) {
        println!("{:.4},{:.4},{}", c[0], c[1], t);
    }
    let sil = silhouette(&latents, &labels);
    eprintln!(
        "silhouette by template over {} QEPs / {} templates: {:.3} \
         (positive = same-template QEPs cluster, as in the paper's Fig. 5)",
        latents.len(),
        label_ids.len(),
        sil
    );
}
