//! JOB-style multi-join planning: sample QEPs from the plan space of JOB
//! queries (§5.1 of the paper), train the cost model on them, and compare
//! the plans QPSeeker produces against the PostgreSQL-style optimizer on
//! held-out queries.
//!
//! ```sh
//! cargo run --release --example job_planning
//! ```

use qpseeker_repro::core::prelude::*;
use qpseeker_repro::engine::prelude::*;
use qpseeker_repro::workloads::{job, JobConfig, Qep};

fn main() {
    let db = std::sync::Arc::new(qpseeker_repro::storage::datagen::imdb::generate(0.15, 11));
    let cfg = JobConfig { n_queries: 40, n_templates: 12, target_qeps: 500, ..Default::default() };

    println!("sampling the plan space of {} JOB-style queries...", cfg.n_queries);
    let workload = job::generate(&db, &cfg);
    println!(
        "JOB workload: {} queries -> {} QEPs (top-15% by the paper's user cost model)",
        workload.num_queries(),
        workload.num_qeps()
    );

    // Query-level split: evaluation queries are never seen in training.
    let (train, eval) = workload.split(0.8, true);
    let mut model = QPSeeker::new(&db, ModelConfig::small());
    model.fit(&train).expect("training succeeds");

    // Collect the distinct evaluation queries.
    let mut seen = std::collections::HashSet::new();
    let eval_queries: Vec<&Qep> =
        eval.into_iter().filter(|q| seen.insert(q.query.id.clone())).collect();

    let ex = Executor::new(&db);
    let pg = PgOptimizer::new(&db);
    let planner = MctsPlanner::new(MctsConfig::default());

    println!(
        "\n{:<12} {:>6} {:>14} {:>14} {:>8}",
        "query", "joins", "QPSeeker (ms)", "Postgres (ms)", "winner"
    );
    let (mut qp_total, mut pg_total) = (0.0, 0.0);
    for qep in &eval_queries {
        let res = planner.plan(&model, &qep.query);
        let qp_ms = ex.execute(&res.plan).time_ms;
        let pg_ms = ex.execute(&pg.plan(&qep.query)).time_ms;
        qp_total += qp_ms;
        pg_total += pg_ms;
        let winner = if qp_ms < pg_ms * 0.95 {
            "QPSeeker"
        } else if pg_ms < qp_ms * 0.95 {
            "Postgres"
        } else {
            "tie"
        };
        println!(
            "{:<12} {:>6} {:>14.2} {:>14.2} {:>8}",
            qep.query.id,
            qep.query.num_joins(),
            qp_ms,
            pg_ms,
            winner
        );
    }
    println!(
        "\ntotals: QPSeeker {qp_total:.1} ms vs PostgreSQL {pg_total:.1} ms over {} held-out queries",
        eval_queries.len()
    );
}
