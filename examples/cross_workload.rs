//! Cross-workload adaptability (§7.2.4 of the paper): train QPSeeker on the
//! *simple* Synthetic workload, then plan completely different JOB queries —
//! including tables the model never saw filtered during training — and
//! compare against PostgreSQL and a Bao advisor trained on the same data.
//!
//! ```sh
//! cargo run --release --example cross_workload
//! ```

use qpseeker_repro::baselines::{Bao, BaoConfig};
use qpseeker_repro::core::prelude::*;
use qpseeker_repro::engine::prelude::*;
use qpseeker_repro::workloads::{job, synthetic, JobConfig, Qep, SyntheticConfig};

fn main() {
    let db = std::sync::Arc::new(qpseeker_repro::storage::datagen::imdb::generate(0.12, 23));

    // Train everything on Synthetic (0-2 join queries only). QPSeeker uses
    // the sampled variant (§3.1 setting (b)) for plan-space coverage.
    let synth = synthetic::generate(&db, &SyntheticConfig { n_queries: 200, seed: 5 });
    let sampled = synthetic::generate_sampled(&db, &SyntheticConfig { n_queries: 200, seed: 5 }, 4);
    println!(
        "training workload: Synthetic ({} queries, <=2 joins; {} sampled QEPs)",
        synth.num_qeps(),
        sampled.num_qeps()
    );
    let refs: Vec<&Qep> = sampled.qeps.iter().collect();
    let mut cfg = ModelConfig::small();
    cfg.epochs = 12;
    let mut model = QPSeeker::new(&db, cfg);
    model.fit(&refs).expect("training succeeds");

    let mut bao = Bao::new(&db, BaoConfig { epochs: 8, ..Default::default() });
    let bao_train: Vec<&Query> = synth.qeps.iter().map(|q| &q.query).take(80).collect();
    bao.train(&bao_train);

    // Evaluate on JOB queries with up to 16 joins — a totally different
    // distribution.
    let queries =
        job::job_queries(&db, &JobConfig { n_queries: 25, n_templates: 8, ..Default::default() });
    let ex = Executor::new(&db);
    let pg = PgOptimizer::new(&db);
    let planner = MctsPlanner::new(MctsConfig::default());

    let (mut qp_total, mut pg_total, mut bao_total) = (0.0, 0.0, 0.0);
    let mut qp_wins = 0;
    let mut qp_losses = 0;
    for (q, _) in &queries {
        let pg_ms = ex.execute(&pg.plan(q)).time_ms;
        let res = planner.plan(&model, q);
        let qp_ms = ex.execute(&res.plan).time_ms;
        let (bao_plan, _) = bao.plan(q);
        let bao_ms = ex.execute(&bao_plan).time_ms;
        qp_total += qp_ms;
        pg_total += pg_ms;
        bao_total += bao_ms;
        if qp_ms < pg_ms * 0.95 {
            qp_wins += 1;
        }
        if qp_ms > pg_ms * 1.05 {
            qp_losses += 1;
        }
    }
    println!(
        "\nJOB evaluation ({} queries, up to 16 joins, never seen in training):",
        queries.len()
    );
    println!("  PostgreSQL total: {pg_total:>10.1} ms");
    println!(
        "  QPSeeker total:   {qp_total:>10.1} ms   (better on {qp_wins}, worse on {qp_losses})"
    );
    println!("  Bao total:        {bao_total:>10.1} ms");
    println!(
        "\npaper shape: QPSeeker stays on par with PostgreSQL on the unseen \
         workload while Bao cannot adapt."
    );
}
