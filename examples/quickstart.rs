//! Quickstart: generate a small IMDb-shaped database, train QPSeeker on a
//! small sampled workload (paper §5.1), and let it plan a 3-way join with
//! MCTS.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use qpseeker_repro::core::prelude::*;
use qpseeker_repro::engine::prelude::*;
use qpseeker_repro::workloads::{job, JobConfig, Qep};

fn main() {
    // 1. A seeded, IMDb-shaped synthetic database (16 relations).
    let db = std::sync::Arc::new(qpseeker_repro::storage::datagen::imdb::generate(0.1, 42));
    println!(
        "database: {} tables / {} rows total / {} FK edges",
        db.catalog.num_tables(),
        db.total_rows(),
        db.catalog.num_joins()
    );

    // 2. A small training workload: for each query, *sample* plans from its
    //    plan space (paper §5.1) and execute them for ground truth. Sampling
    //    the space — rather than trusting one optimizer plan per query — is
    //    what teaches the cost model the difference between good and
    //    catastrophic plans.
    let workload = job::generate(
        &db,
        &JobConfig {
            n_queries: 24,
            n_templates: 8,
            target_qeps: 400,
            keep_fraction: 1.0, // uniform plan-space coverage
            ..Default::default()
        },
    );
    println!(
        "workload: {} QEPs sampled from {} queries",
        workload.num_qeps(),
        workload.num_queries()
    );

    // 3. Train the neural planner (tiny config for the example).
    let mut cfg = ModelConfig::small();
    cfg.epochs = 20;
    let mut model = QPSeeker::new(&db, cfg);
    let refs: Vec<&Qep> = workload.qeps.iter().collect();
    let report = model.fit(&refs).expect("training succeeds");
    println!(
        "trained {} parameters in {:.1}s (loss {:.3} -> {:.3})",
        model.num_parameters(),
        report.train_seconds,
        report.epoch_losses.first().unwrap(),
        report.epoch_losses.last().unwrap()
    );

    // 4. Plan an unseen 3-way join with MCTS + the learned cost model.
    let mut q = Query::new("demo");
    q.relations =
        vec![RelRef::new("title"), RelRef::new("movie_info"), RelRef::new("movie_keyword")];
    q.joins = vec![
        JoinPred { left: ColRef::new("movie_info", "movie_id"), right: ColRef::new("title", "id") },
        JoinPred {
            left: ColRef::new("movie_keyword", "movie_id"),
            right: ColRef::new("title", "id"),
        },
    ];
    q.filters =
        vec![Filter { col: ColRef::new("title", "production_year"), op: CmpOp::Gt, value: 2000.0 }];

    let planner = MctsPlanner::new(MctsConfig::default());
    let result = planner.plan(&model, &q);
    println!(
        "\nMCTS evaluated {} plans in {} simulations; predicted runtime {:.3} ms",
        result.plans_evaluated, result.simulations, result.predicted_ms
    );
    println!("chosen plan:\n{}", result.plan.pretty());

    // 5. Execute both the learned plan and the PostgreSQL-style plan.
    let ex = Executor::new(&db);
    let qpseeker_ms = ex.execute(&result.plan).time_ms;
    let pg_plan = PgOptimizer::new(&db).plan(&q);
    let pg_ms = ex.execute(&pg_plan).time_ms;
    println!("executed: QPSeeker plan {qpseeker_ms:.3} ms | PostgreSQL plan {pg_ms:.3} ms");
}
